package core

import (
	"fmt"
	"strings"

	"dmac/internal/dep"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// ValueID identifies a physical matrix instance in a plan: one logical
// matrix materialized with one scheme (and possibly transposed), like the
// W1(b) / W1ᵀ(b) / W1(r) nodes of Figure 3.
type ValueID int

// Value describes a physical matrix instance.
type Value struct {
	ID ValueID
	// Matrix is the logical matrix (program node) this value carries.
	Matrix dep.MatrixID
	// Transposed reports that the stored data is the transpose of the
	// logical matrix.
	Transposed bool
	// Scheme is the distribution scheme of the stored data. SchemeNone
	// denotes hash-partitioned data (fresh loads; SystemML-S outputs).
	Scheme dep.Scheme
	// flexible lists the schemes this value may still be pinned to; nil once
	// pinned. Only CPMM outputs start flexible (r|c).
	flexible []dep.Scheme
}

// Pinned reports whether the value's scheme is final.
func (v *Value) Pinned() bool { return len(v.flexible) == 0 }

// String renders the value like the node annotations of Figure 3.
func (v *Value) String() string {
	t := ""
	if v.Transposed {
		t = "ᵀ"
	}
	s := v.Scheme.String()
	if !v.Pinned() {
		parts := make([]string, len(v.flexible))
		for i, p := range v.flexible {
			parts[i] = p.String()
		}
		s = strings.Join(parts, "|")
	}
	return fmt.Sprintf("m%d%s(%s)", v.Matrix, t, s)
}

// OpKind discriminates plan operators: the compute operators of the program
// plus the five extended operators of Section 4.2.1 (partition, broadcast,
// transpose, reference, extract) and the leaf materialization operators.
type OpKind int

// Plan operator kinds.
const (
	// OpLoad materializes a loaded input matrix hash-partitioned.
	OpLoad OpKind = iota
	// OpVar binds a session variable instance (materialized by a previous
	// program) into the plan.
	OpVar
	// OpCompute executes a program operator with a chosen strategy.
	OpCompute
	// OpPartition repartitions a value to a Row or Col scheme (shuffle).
	OpPartition
	// OpBroadcast replicates a value to every worker.
	OpBroadcast
	// OpTranspose locally transposes a value (Row <-> Col, or Broadcast).
	OpTranspose
	// OpExtract locally filters a broadcast replica down to a Row or Col
	// partition.
	OpExtract
	// OpReference marks a direct reuse of an existing value (null op; kept
	// in the plan for fidelity with Section 4.2.1 and for plan printing).
	OpReference
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpVar:
		return "var"
	case OpCompute:
		return "compute"
	case OpPartition:
		return "partition"
	case OpBroadcast:
		return "broadcast"
	case OpTranspose:
		return "transpose"
	case OpExtract:
		return "extract"
	case OpReference:
		return "reference"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsComm reports whether the operator moves data across workers.
func (k OpKind) IsComm() bool { return k == OpPartition || k == OpBroadcast }

// Op is one operator of an execution plan.
type Op struct {
	// Kind discriminates the operator.
	Kind OpKind
	// Node is the program node for OpLoad/OpVar/OpCompute (nil otherwise).
	Node *expr.Node
	// Strategy is the chosen execution strategy for OpCompute.
	Strategy Strategy
	// MulAlgo is the multiply algorithm the cost model picked for an
	// OpCompute multiplication (classical unless Strassen prices cheaper).
	MulAlgo matrix.MulAlgo
	// Inputs are the physical values consumed (empty for leaves).
	Inputs []ValueID
	// InDeps records the dependency type satisfied on each input edge of an
	// OpCompute (parallel to Inputs); informational.
	InDeps []dep.Type
	// Output is the produced value, or -1 for aggregates (driver scalars).
	Output ValueID
	// ScalarName is the driver scalar bound by an aggregate OpCompute.
	ScalarName string
	// CommBytes is the estimated communication this operator incurs.
	CommBytes int64
	// Stage is the un-interleaved stage index (1-based), assigned by
	// AssignStages.
	Stage int
}

// Plan is an executable plan: operators in execution order over a store of
// physical values. Produced by the DMac planner (Generate) or the
// SystemML-S baseline planner (GenerateSystemMLS).
type Plan struct {
	Program *expr.Program
	Workers int
	Ops     []*Op
	Values  []*Value
	// NodeValue maps each program node to the plan value carrying its
	// result (aggregates excluded).
	NodeValue map[dep.MatrixID]ValueID
	// Stages is the number of un-interleaved stages after AssignStages.
	Stages int
}

// Value returns the value record for an ID.
func (p *Plan) Value(id ValueID) *Value { return p.Values[id] }

// TotalCommBytes returns the estimated communication of the whole plan.
func (p *Plan) TotalCommBytes() int64 {
	var t int64
	for _, op := range p.Ops {
		t += op.CommBytes
	}
	return t
}

// CommOps counts operators that move data across the cluster.
func (p *Plan) CommOps() int {
	n := 0
	for _, op := range p.Ops {
		if op.CommBytes > 0 {
			n++
		}
	}
	return n
}

// finalizeFlexible pins any still-flexible value to its first allowed scheme
// (CPMM outputs default to Row when no consumer constrained them).
func (p *Plan) finalizeFlexible() {
	for _, v := range p.Values {
		if !v.Pinned() {
			v.Scheme = v.flexible[0]
			v.flexible = nil
		}
	}
}

// AssignStages divides the plan into un-interleaved stages (Section 5.2):
// network communication happens only between stages, so a communication
// operator publishes its output into the next stage, while local operators
// stay in the stage of their latest input. It returns the stage count.
func (p *Plan) AssignStages() int {
	valueStage := make([]int, len(p.Values))
	maxStage := 1
	for _, op := range p.Ops {
		in := 1
		for _, id := range op.Inputs {
			if valueStage[id] > in {
				in = valueStage[id]
			}
		}
		stage := in
		// An operator that communicates — an extended partition/broadcast
		// operator, a CPMM aggregation, or a hash repartition charged on a
		// compute input edge — delivers its result in the following stage.
		if op.CommBytes > 0 {
			stage = in + 1
		}
		op.Stage = stage
		if op.Output >= 0 {
			valueStage[op.Output] = stage
		}
		if stage > maxStage {
			maxStage = stage
		}
	}
	p.Stages = maxStage
	return maxStage
}

// String renders the plan as a table: one operator per line with its stage,
// strategy, inputs, dependency types and communication estimate.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d ops, %d values, %d stages, est. comm %d bytes\n",
		len(p.Ops), len(p.Values), p.Stages, p.TotalCommBytes())
	for i, op := range p.Ops {
		fmt.Fprintf(&b, "%3d [s%d] %-9s", i, op.Stage, op.Kind)
		if op.Kind == OpCompute {
			fmt.Fprintf(&b, " %-7s %s", op.Strategy, op.Node.Label())
			// Classical is the default; only a non-default pick is printed, so
			// golden plans without Strassen-eligible shapes are unchanged.
			if op.MulAlgo != matrix.MulClassical {
				fmt.Fprintf(&b, " [%s]", op.MulAlgo)
			}
		} else if op.Node != nil {
			fmt.Fprintf(&b, " %s", op.Node.Label())
		}
		if len(op.Inputs) > 0 {
			ins := make([]string, len(op.Inputs))
			for j, id := range op.Inputs {
				ins[j] = p.Values[id].String()
				if j < len(op.InDeps) && op.InDeps[j] != dep.NoDependency {
					ins[j] += ":" + op.InDeps[j].String()
				}
			}
			fmt.Fprintf(&b, " <- %s", strings.Join(ins, ", "))
		}
		if op.Output >= 0 {
			fmt.Fprintf(&b, " -> %s", p.Values[op.Output])
		}
		if op.ScalarName != "" {
			fmt.Fprintf(&b, " -> $%s", op.ScalarName)
		}
		if op.CommBytes > 0 {
			fmt.Fprintf(&b, "  [comm %d]", op.CommBytes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the plan's value/operator DAG in Graphviz format, analogous
// to Figure 3: ellipse nodes are physical matrices annotated with schemes,
// edges are operators, dashed edges are local (communication-free).
func (p *Plan) DOT() string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  rankdir=TB;\n  node [shape=ellipse];\n")
	for _, v := range p.Values {
		fmt.Fprintf(&b, "  v%d [label=%q];\n", v.ID, v.String())
	}
	for i, op := range p.Ops {
		label := op.Kind.String()
		if op.Kind == OpCompute {
			label = fmt.Sprintf("%s\\n%s", op.Node.Label(), op.Strategy)
		}
		style := ""
		if op.CommBytes == 0 && op.Kind != OpLoad && op.Kind != OpVar {
			style = ", style=dashed"
		}
		switch {
		case op.Output >= 0 && len(op.Inputs) > 0:
			for _, in := range op.Inputs {
				fmt.Fprintf(&b, "  v%d -> v%d [label=\"%s (s%d)\"%s];\n", in, op.Output, label, op.Stage, style)
			}
		case op.Output >= 0:
			fmt.Fprintf(&b, "  src%d [shape=box, label=%q];\n  src%d -> v%d;\n", i, label, i, op.Output)
		case op.ScalarName != "":
			fmt.Fprintf(&b, "  sc%d [shape=box, label=\"$%s\"];\n", i, op.ScalarName)
			for _, in := range op.Inputs {
				fmt.Fprintf(&b, "  v%d -> sc%d [label=\"%s (s%d)\"%s];\n", in, i, label, op.Stage, style)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
