package core

import (
	"fmt"

	"dmac/internal/dep"
	"dmac/internal/expr"
)

// Strategy identifies a physical execution strategy for an operator.
type Strategy int

// The execution strategies of DMac's operators. The three multiplication
// strategies are those of Figure 2; cell-wise and scalar operators align
// both operands on one scheme and run without communication.
const (
	// StrategyNone marks extended (non-compute) plan operators.
	StrategyNone Strategy = iota
	// RMM1 is replication-based multiplication A(b) x B(c) -> C(c).
	RMM1
	// RMM2 is replication-based multiplication A(r) x B(b) -> C(r).
	RMM2
	// CPMM is cross-product multiplication A(c) x B(r) -> C with a shuffled
	// aggregation of per-worker partial results; the aggregated output can
	// be produced with either one-dimensional scheme (r|c).
	CPMM
	// CellRow runs a cell-wise or scalar operator on row-aligned operands.
	CellRow
	// CellCol runs it on column-aligned operands.
	CellCol
	// CellBcast runs it on broadcast replicas, producing a broadcast result.
	CellBcast
	// AggRow computes a driver aggregate over a row-partitioned input.
	AggRow
	// AggCol computes a driver aggregate over a column-partitioned input.
	AggCol
	// AggBcast computes a driver aggregate over a broadcast input.
	AggBcast
)

// String names the strategy as in the paper.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "-"
	case RMM1:
		return "RMM1"
	case RMM2:
		return "RMM2"
	case CPMM:
		return "CPMM"
	case CellRow:
		return "cell(r)"
	case CellCol:
		return "cell(c)"
	case CellBcast:
		return "cell(b)"
	case AggRow:
		return "agg(r)"
	case AggCol:
		return "agg(c)"
	case AggBcast:
		return "agg(b)"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// candidate is one execution strategy for one operator: the schemes it
// requires for its inputs, the scheme(s) its output can carry, and the
// communication its own execution incurs (non-zero only for CPMM's shuffled
// aggregation, Section 4.1).
type candidate struct {
	strategy Strategy
	ins      []dep.Scheme
	// outSchemes lists the schemes the output event may carry. A single
	// entry is a fixed scheme; multiple entries mean the output is flexible
	// and is pinned later by the Re-assignment heuristic (CPMM's r|c).
	outSchemes []dep.Scheme
	// outCost is the communication cost of the output event in bytes.
	outCost int64
}

// candidatesFor enumerates the execution strategies of a compute node.
// workers is N; outSize is the worst-case |C| of the node's output.
func candidatesFor(n *expr.Node, workers int) []candidate {
	outSize := NodeSize(n)
	switch n.Kind {
	case expr.KindMul:
		return []candidate{
			{strategy: RMM1, ins: []dep.Scheme{dep.Broadcast, dep.Col}, outSchemes: []dep.Scheme{dep.Col}},
			{strategy: RMM2, ins: []dep.Scheme{dep.Row, dep.Broadcast}, outSchemes: []dep.Scheme{dep.Row}},
			{strategy: CPMM, ins: []dep.Scheme{dep.Col, dep.Row}, outSchemes: []dep.Scheme{dep.Row, dep.Col}, outCost: int64(workers) * outSize},
		}
	case expr.KindCell:
		return []candidate{
			{strategy: CellRow, ins: []dep.Scheme{dep.Row, dep.Row}, outSchemes: []dep.Scheme{dep.Row}},
			{strategy: CellCol, ins: []dep.Scheme{dep.Col, dep.Col}, outSchemes: []dep.Scheme{dep.Col}},
			{strategy: CellBcast, ins: []dep.Scheme{dep.Broadcast, dep.Broadcast}, outSchemes: []dep.Scheme{dep.Broadcast}},
		}
	case expr.KindScalar, expr.KindUFunc:
		return []candidate{
			{strategy: CellRow, ins: []dep.Scheme{dep.Row}, outSchemes: []dep.Scheme{dep.Row}},
			{strategy: CellCol, ins: []dep.Scheme{dep.Col}, outSchemes: []dep.Scheme{dep.Col}},
			{strategy: CellBcast, ins: []dep.Scheme{dep.Broadcast}, outSchemes: []dep.Scheme{dep.Broadcast}},
		}
	case expr.KindSum, expr.KindValue, expr.KindNorm2:
		return []candidate{
			{strategy: AggRow, ins: []dep.Scheme{dep.Row}},
			{strategy: AggCol, ins: []dep.Scheme{dep.Col}},
			{strategy: AggBcast, ins: []dep.Scheme{dep.Broadcast}},
		}
	default:
		return nil
	}
}
