package core

import (
	"fmt"

	"dmac/internal/dep"
	"dmac/internal/expr"
)

// Config parameterizes plan generation.
type Config struct {
	// Workers is N, the number of workers in the cluster.
	Workers int
	// Vars lists the schemes under which each session variable is already
	// materialized from previous program executions. A variable cached with
	// several schemes contributes several output events (e.g. V kept both
	// row-partitioned and broadcast).
	Vars map[string][]dep.Scheme
	// DisablePullUp turns off the Pull-Up Broadcast heuristic (Heuristic 1)
	// for ablation studies.
	DisablePullUp bool
	// DisableReassign turns off the Re-assignment heuristic (Heuristic 2):
	// CPMM outputs are pinned immediately to their first allowed scheme
	// instead of being left flexible for consumers.
	DisableReassign bool
	// DisableCPMM removes the CPMM strategy from the candidate set, for
	// ablating the strategy space.
	DisableCPMM bool
	// BlockSize is the session block side; the multiply-algorithm model
	// clamps operator shapes to it, since block products are what execute.
	// Zero leaves shapes unclamped.
	BlockSize int
	// Cores is the intra-op kernel parallelism multiply pricing assumes
	// (matrix.KernelWorkers() at execution time). Zero or negative means 1.
	Cores int
}

// Generate builds a communication-efficient execution plan for a matrix
// program by exploiting matrix dependencies — Algorithm 1 of the paper. It
// walks the operators in decomposition order, selects the execution strategy
// with minimum communication cost against the accumulated output events
// (Eq. 1), applies the Re-assignment and Pull-Up Broadcast heuristics, and
// materializes extended operators for the residual dependencies. Stages are
// assigned before returning.
func Generate(p *expr.Program, cfg Config) (*Plan, error) {
	return generate(p, cfg, false)
}

// GenerateSystemMLS builds the SystemML-S baseline plan (Section 6.1): the
// same operator strategies and the same runtime, but no matrix-dependency
// analysis. Every operator's input matrices undergo a repartition phase —
// cached values never satisfy a scheme requirement directly — and reading a
// transpose pays an additional shuffle to materialize it.
func GenerateSystemMLS(p *expr.Program, cfg Config) (*Plan, error) {
	return generate(p, cfg, true)
}

func generate(p *expr.Program, cfg Config, baseline bool) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: need at least 1 worker, got %d", cfg.Workers)
	}
	g := &gen{
		plan: &Plan{
			Program:   p,
			Workers:   cfg.Workers,
			NodeValue: make(map[dep.MatrixID]ValueID),
		},
		cfg:        cfg,
		baseline:   baseline,
		scalarName: make(map[dep.MatrixID]string),
	}
	for _, so := range p.ScalarOuts() {
		g.scalarName[so.Node.ID] = so.Name
	}
	for _, idx := range p.OperatorOrder() {
		if err := g.emit(p.Nodes()[idx]); err != nil {
			return nil, err
		}
	}
	g.plan.finalizeFlexible()
	g.plan.AssignStages()
	return g.plan, nil
}

// inputRecord remembers an input event that was satisfied through a
// partition operator; the Pull-Up Broadcast heuristic rewrites such
// operators when a later input event broadcasts the same matrix.
type inputRecord struct {
	matrix      dep.MatrixID
	partitionOp int // index into plan.Ops
}

type gen struct {
	plan       *Plan
	cfg        Config
	baseline   bool
	scalarName map[dep.MatrixID]string
	inputs     []inputRecord
}

// req is an input event being satisfied: operator op requires matrix
// (possibly transposed) with the given scheme.
type req struct {
	matrix     dep.MatrixID
	transposed bool
	scheme     dep.Scheme
	size       int64
}

func (g *gen) newValue(m dep.MatrixID, transposed bool, scheme dep.Scheme, flexible []dep.Scheme) *Value {
	v := &Value{
		ID:         ValueID(len(g.plan.Values)),
		Matrix:     m,
		Transposed: transposed,
		Scheme:     scheme,
		flexible:   flexible,
	}
	g.plan.Values = append(g.plan.Values, v)
	return v
}

func (g *gen) addOp(op *Op) int {
	g.plan.Ops = append(g.plan.Ops, op)
	return len(g.plan.Ops) - 1
}

// emit plans a single program node.
func (g *gen) emit(n *expr.Node) error {
	switch n.Kind {
	case expr.KindLoad:
		// Loaded inputs start hash-partitioned (SchemeNone): reading them
		// with any concrete scheme pays an initial shuffle.
		v := g.newValue(n.ID, false, dep.SchemeNone, nil)
		g.addOp(&Op{Kind: OpLoad, Node: n, Output: v.ID})
		g.plan.NodeValue[n.ID] = v.ID
		return nil
	case expr.KindVar:
		schemes := g.cfg.Vars[n.Name]
		if len(schemes) == 0 {
			schemes = []dep.Scheme{dep.SchemeNone}
		}
		for i, s := range schemes {
			v := g.newValue(n.ID, false, s, nil)
			g.addOp(&Op{Kind: OpVar, Node: n, Output: v.ID})
			if i == 0 {
				g.plan.NodeValue[n.ID] = v.ID
			}
		}
		return nil
	}

	cands := candidatesFor(n, g.cfg.Workers)
	if g.cfg.DisableCPMM && n.Kind == expr.KindMul {
		kept := cands[:0:0]
		for _, c := range cands {
			if c.strategy != CPMM {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	if len(cands) == 0 {
		return fmt.Errorf("core: no execution strategy for node kind %v", n.Kind)
	}
	// Equation 1: select the strategy with minimum total communication.
	best, bestCost := -1, int64(-1)
	for i, c := range cands {
		cost := c.outCost
		for slot, scheme := range c.ins {
			in := n.Inputs[slot]
			r := req{
				matrix:     in.Node.ID,
				transposed: in.Transposed,
				scheme:     scheme,
				size:       NodeSize(in.Node),
			}
			_, _, _, inCost := g.bestDep(r)
			cost += inCost
		}
		if best == -1 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	chosen := cands[best]

	// Materialize the inputs, applying the heuristics (Lines 10-24).
	op := &Op{
		Kind:       OpCompute,
		Node:       n,
		Strategy:   chosen.strategy,
		ScalarName: g.scalarName[n.ID],
		Output:     -1,
	}
	if n.Kind == expr.KindMul {
		// The compute-side strategy pick: classical vs Strassen from the
		// operator's shape and worst-case sparsities (see mulalgo.go).
		in0, in1 := n.Inputs[0], n.Inputs[1]
		op.MulAlgo = ChooseMulAlgo(n.Rows, in0.Cols(), n.Cols,
			in0.Node.Sparsity, in1.Node.Sparsity, g.cfg.BlockSize, g.cfg.Cores)
	}
	for slot, scheme := range chosen.ins {
		in := n.Inputs[slot]
		r := req{
			matrix:     in.Node.ID,
			transposed: in.Transposed,
			scheme:     scheme,
			size:       NodeSize(in.Node),
		}
		vid, dtype := g.materialize(r)
		op.Inputs = append(op.Inputs, vid)
		op.InDeps = append(op.InDeps, dtype)
	}
	// The output event: CPMM outputs stay flexible between Row and Col
	// until a consumer pins them (Re-assignment, Heuristic 2).
	if !n.Kind.IsAggregate() {
		var out *Value
		if len(chosen.outSchemes) > 1 && !g.cfg.DisableReassign {
			out = g.newValue(n.ID, false, chosen.outSchemes[0], chosen.outSchemes)
		} else {
			out = g.newValue(n.ID, false, chosen.outSchemes[0], nil)
		}
		op.Output = out.ID
		g.plan.NodeValue[n.ID] = out.ID
	}
	op.CommBytes = chosen.outCost
	if n.Kind.IsAggregate() {
		// Driver collect of one partial scalar per worker.
		op.CommBytes = 8 * int64(g.cfg.Workers)
	}
	g.addOp(op)
	return nil
}

// bestDep finds the cheapest way to satisfy an input event from the
// available output events (the OutputSet of Algorithm 1). It returns the
// source value, the scheme the source would be read with (relevant for
// flexible values), the dependency type, and the communication cost.
// In baseline (SystemML-S) mode dependencies are ignored: every read pays a
// hash repartition, plus an extra shuffle for a transposed read.
func (g *gen) bestDep(r req) (src *Value, srcScheme dep.Scheme, dtype dep.Type, cost int64) {
	if g.baseline {
		src = g.anyValue(r.matrix)
		cost = g.hashCost(r)
		return src, src.Scheme, g.hashDepType(r), cost
	}
	bestRank := 0
	for _, v := range g.plan.Values {
		if v.Matrix != r.matrix {
			continue
		}
		schemes := v.flexible
		if v.Pinned() {
			schemes = []dep.Scheme{v.Scheme}
		}
		for _, s := range schemes {
			t, c := g.classify(r, v, s)
			if t == dep.NoDependency {
				continue
			}
			rank := depRank(t)
			if src == nil || c < cost || (c == cost && rank < bestRank) {
				src, srcScheme, dtype, cost, bestRank = v, s, t, c, rank
			}
		}
	}
	return src, srcScheme, dtype, cost
}

// classify returns the dependency type and cost of reading value v (assumed
// at scheme s) for requirement r. Hash-partitioned sources (SchemeNone)
// always pay a shuffle.
func (g *gen) classify(r req, v *Value, s dep.Scheme) (dep.Type, int64) {
	transposed := r.transposed != v.Transposed
	if s == dep.SchemeNone {
		t := g.hashDepTypeTr(transposed, r.scheme)
		return t, t.Cost(r.size, g.cfg.Workers)
	}
	t := dep.Classify(transposed, s, r.scheme)
	return t, t.Cost(r.size, g.cfg.Workers)
}

// hashDepTypeTr maps a read from hash-partitioned data onto the equivalent
// communication dependency.
func (g *gen) hashDepTypeTr(transposed bool, want dep.Scheme) dep.Type {
	if want == dep.Broadcast {
		if transposed {
			return dep.TransposeBroadcast
		}
		return dep.BroadcastDep
	}
	if transposed {
		return dep.TransposePartition
	}
	return dep.Partition
}

func (g *gen) hashDepType(r req) dep.Type { return g.hashDepTypeTr(r.transposed, r.scheme) }

// hashCost is the baseline read cost: a repartition (|A| or N|A|) plus an
// extra |A| shuffle when the read is transposed (SystemML-S materializes
// transposes with a separate job, Section 1).
func (g *gen) hashCost(r req) int64 {
	c := r.size
	if r.scheme == dep.Broadcast {
		c = int64(g.cfg.Workers) * r.size
	}
	if r.transposed {
		c += r.size
	}
	return c
}

// anyValue returns some value of the matrix (baseline mode does not care
// which).
func (g *gen) anyValue(m dep.MatrixID) *Value {
	for _, v := range g.plan.Values {
		if v.Matrix == m {
			return v
		}
	}
	panic(fmt.Sprintf("core: no value for matrix m%d", m))
}

// depRank orders equally-priced dependencies: direct reuse beats a local
// transform, which beats a two-step local transform.
func depRank(t dep.Type) int {
	switch t {
	case dep.Reference:
		return 0
	case dep.Transpose, dep.Extract:
		return 1
	case dep.ExtractTranspose:
		return 2
	case dep.Partition, dep.BroadcastDep:
		return 3
	default: // TransposePartition, TransposeBroadcast
		return 4
	}
}

// materialize satisfies an input event, inserting extended operators as
// needed, and returns the value to wire into the consuming operator along
// with the dependency type that was satisfied.
func (g *gen) materialize(r req) (ValueID, dep.Type) {
	if g.baseline {
		return g.materializeBaseline(r)
	}
	src, srcScheme, dtype, cost := g.bestDep(r)
	if src == nil {
		panic(fmt.Sprintf("core: no source for matrix m%d", r.matrix))
	}
	// Heuristic 2 (Re-assignment): reading a flexible output pins it to the
	// scheme that minimizes this input's cost.
	if !src.Pinned() {
		src.Scheme = srcScheme
		src.flexible = nil
	}
	// Heuristic 1 (Pull-Up Broadcast): this event needs a broadcast that
	// costs communication, and an earlier input event already paid a
	// partition for the same matrix. Broadcasting at the earlier operator
	// serves both: the earlier requirement becomes a local extract.
	if cost > 0 && dtype.NeedsBroadcast() && !g.cfg.DisablePullUp {
		if _, ok := g.pullUpBroadcast(r); ok {
			src, srcScheme, dtype, cost = g.bestDep(r)
		}
	}
	switch dtype {
	case dep.Reference:
		return src.ID, dtype
	case dep.Transpose:
		return g.localTranspose(src).ID, dtype
	case dep.Extract:
		return g.extract(src, r.scheme).ID, dtype
	case dep.ExtractTranspose:
		ex := g.extract(src, r.scheme.Opposite())
		return g.localTranspose(ex).ID, dtype
	case dep.Partition, dep.TransposePartition:
		cur := src
		if r.transposed != cur.Transposed {
			cur = g.localTranspose(cur)
		}
		out := g.partition(cur, r.scheme, r.size)
		g.inputs = append(g.inputs, inputRecord{matrix: r.matrix, partitionOp: len(g.plan.Ops) - 1})
		return out.ID, dtype
	case dep.BroadcastDep, dep.TransposeBroadcast:
		cur := src
		if r.transposed != cur.Transposed {
			cur = g.localTranspose(cur)
		}
		return g.broadcast(cur, r.size).ID, dtype
	default:
		panic(fmt.Sprintf("core: unexpected dependency type %v", dtype))
	}
}

// materializeBaseline wires a baseline read: always a fresh shuffle from
// whatever instance exists, with an extra transpose job when needed.
func (g *gen) materializeBaseline(r req) (ValueID, dep.Type) {
	src := g.anyValue(r.matrix)
	dtype := g.hashDepType(r)
	cur := src
	if r.transposed != cur.Transposed {
		// Transpose job: a full shuffle of |A| in MapReduce-style systems.
		t := g.newValue(cur.Matrix, !cur.Transposed, cur.Scheme.Opposite(), nil)
		g.addOp(&Op{Kind: OpTranspose, Inputs: []ValueID{cur.ID}, Output: t.ID, CommBytes: r.size})
		cur = t
	}
	if r.scheme == dep.Broadcast {
		return g.broadcast(cur, r.size).ID, dtype
	}
	out := g.newValue(cur.Matrix, cur.Transposed, r.scheme, nil)
	g.addOp(&Op{Kind: OpPartition, Inputs: []ValueID{cur.ID}, Output: out.ID, CommBytes: r.size})
	return out.ID, dtype
}

// pullUpBroadcast applies Heuristic 1: find an earlier partition operator on
// the same matrix and rewrite it into broadcast + extract. Returns the new
// broadcast value.
func (g *gen) pullUpBroadcast(r req) (*Value, bool) {
	for i := len(g.inputs) - 1; i >= 0; i-- {
		rec := g.inputs[i]
		if rec.matrix != r.matrix {
			continue
		}
		pop := g.plan.Ops[rec.partitionOp]
		if pop.Kind != OpPartition {
			continue // already rewritten by a previous pull-up
		}
		srcID := pop.Inputs[0]
		srcVal := g.plan.Values[srcID]
		oldOut := g.plan.Values[pop.Output]
		// Rewrite: src -> broadcast -> b-value, then extract b-value back to
		// the scheme the old consumers expected. The old output value keeps
		// its ID so existing consumers stay wired.
		bval := g.newValue(srcVal.Matrix, srcVal.Transposed, dep.Broadcast, nil)
		pop.Kind = OpBroadcast
		pop.Output = bval.ID
		pop.CommBytes = int64(g.cfg.Workers) * r.size
		extract := &Op{
			Kind:   OpExtract,
			Inputs: []ValueID{bval.ID},
			Output: oldOut.ID,
		}
		// Insert the extract right after the rewritten operator.
		g.plan.Ops = append(g.plan.Ops, nil)
		copy(g.plan.Ops[rec.partitionOp+2:], g.plan.Ops[rec.partitionOp+1:])
		g.plan.Ops[rec.partitionOp+1] = extract
		// Fix recorded op indices shifted by the insertion.
		for j := range g.inputs {
			if g.inputs[j].partitionOp > rec.partitionOp {
				g.inputs[j].partitionOp++
			}
		}
		return bval, true
	}
	return nil, false
}

func (g *gen) localTranspose(src *Value) *Value {
	out := g.newValue(src.Matrix, !src.Transposed, src.Scheme.Opposite(), nil)
	g.addOp(&Op{Kind: OpTranspose, Inputs: []ValueID{src.ID}, Output: out.ID})
	return out
}

func (g *gen) extract(src *Value, scheme dep.Scheme) *Value {
	out := g.newValue(src.Matrix, src.Transposed, scheme, nil)
	g.addOp(&Op{Kind: OpExtract, Inputs: []ValueID{src.ID}, Output: out.ID})
	return out
}

func (g *gen) partition(src *Value, scheme dep.Scheme, size int64) *Value {
	out := g.newValue(src.Matrix, src.Transposed, scheme, nil)
	g.addOp(&Op{Kind: OpPartition, Inputs: []ValueID{src.ID}, Output: out.ID, CommBytes: size})
	return out
}

func (g *gen) broadcast(src *Value, size int64) *Value {
	out := g.newValue(src.Matrix, src.Transposed, dep.Broadcast, nil)
	g.addOp(&Op{Kind: OpBroadcast, Inputs: []ValueID{src.ID}, Output: out.ID, CommBytes: int64(g.cfg.Workers) * size})
	return out
}
