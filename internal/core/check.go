package core

import (
	"fmt"

	"dmac/internal/dep"
	"dmac/internal/expr"
)

// Check validates the structural invariants of a plan. It is used by tests
// and by the engine before execution:
//
//   - every operator reads only values produced by earlier operators;
//   - every value is produced by exactly one operator;
//   - schemes are concrete (flexible outputs were finalized) and consistent
//     with the operator kinds (partition -> r/c, broadcast -> b, transpose
//     flips scheme and transposition, extract reads b);
//   - within a stage no operator communicates across its boundary: every
//     communicating operator's inputs live in an earlier stage.
func (p *Plan) Check() error {
	produced := make([]bool, len(p.Values))
	for i, op := range p.Ops {
		for _, in := range op.Inputs {
			if in < 0 || int(in) >= len(p.Values) {
				return fmt.Errorf("core: op %d reads invalid value v%d", i, in)
			}
			if !produced[in] {
				return fmt.Errorf("core: op %d reads value v%d before it is produced", i, in)
			}
		}
		if op.Output >= 0 {
			if int(op.Output) >= len(p.Values) {
				return fmt.Errorf("core: op %d produces invalid value v%d", i, op.Output)
			}
			if produced[op.Output] {
				return fmt.Errorf("core: value v%d produced twice", op.Output)
			}
			produced[op.Output] = true
			out := p.Values[op.Output]
			if !out.Pinned() {
				return fmt.Errorf("core: op %d output v%d has unfinalized scheme", i, op.Output)
			}
		}
		if err := p.checkOpSchemes(i, op); err != nil {
			return err
		}
	}
	for i, ok := range produced {
		if !ok {
			return fmt.Errorf("core: value v%d is never produced", i)
		}
	}
	// Stage discipline: only communicating operators may cross stages, and
	// they must cross exactly one.
	for i, op := range p.Ops {
		maxIn := 0
		for _, in := range op.Inputs {
			s := p.stageOfValue(in)
			if s > maxIn {
				maxIn = s
			}
		}
		if len(op.Inputs) == 0 {
			continue
		}
		switch {
		case op.CommBytes > 0 && op.Stage != maxIn+1:
			return fmt.Errorf("core: comm op %d at stage %d, inputs at %d", i, op.Stage, maxIn)
		case op.CommBytes == 0 && op.Stage != maxIn:
			return fmt.Errorf("core: local op %d at stage %d, inputs at %d", i, op.Stage, maxIn)
		}
	}
	return nil
}

func (p *Plan) stageOfValue(id ValueID) int {
	for _, op := range p.Ops {
		if op.Output == id {
			return op.Stage
		}
	}
	return 0
}

func (p *Plan) checkOpSchemes(i int, op *Op) error {
	val := func(id ValueID) *Value { return p.Values[id] }
	switch op.Kind {
	case OpLoad, OpVar:
		if len(op.Inputs) != 0 || op.Output < 0 {
			return fmt.Errorf("core: leaf op %d malformed", i)
		}
		if op.Node == nil || (op.Node.Kind != expr.KindLoad && op.Node.Kind != expr.KindVar) {
			return fmt.Errorf("core: leaf op %d has wrong node", i)
		}
	case OpPartition:
		if len(op.Inputs) != 1 || op.Output < 0 {
			return fmt.Errorf("core: partition op %d malformed", i)
		}
		if s := val(op.Output).Scheme; s != dep.Row && s != dep.Col {
			return fmt.Errorf("core: partition op %d produces scheme %s", i, s)
		}
		if op.CommBytes <= 0 {
			return fmt.Errorf("core: partition op %d has no communication", i)
		}
	case OpBroadcast:
		if len(op.Inputs) != 1 || op.Output < 0 {
			return fmt.Errorf("core: broadcast op %d malformed", i)
		}
		if val(op.Output).Scheme != dep.Broadcast {
			return fmt.Errorf("core: broadcast op %d produces scheme %s", i, val(op.Output).Scheme)
		}
		if op.CommBytes <= 0 {
			return fmt.Errorf("core: broadcast op %d has no communication", i)
		}
	case OpTranspose:
		if len(op.Inputs) != 1 || op.Output < 0 {
			return fmt.Errorf("core: transpose op %d malformed", i)
		}
		in, out := val(op.Inputs[0]), val(op.Output)
		if out.Transposed == in.Transposed {
			return fmt.Errorf("core: transpose op %d does not flip transposition", i)
		}
		if out.Scheme != in.Scheme.Opposite() {
			return fmt.Errorf("core: transpose op %d scheme %s -> %s", i, in.Scheme, out.Scheme)
		}
	case OpExtract:
		if len(op.Inputs) != 1 || op.Output < 0 {
			return fmt.Errorf("core: extract op %d malformed", i)
		}
		in, out := val(op.Inputs[0]), val(op.Output)
		if in.Scheme != dep.Broadcast {
			return fmt.Errorf("core: extract op %d reads scheme %s", i, in.Scheme)
		}
		if s := out.Scheme; s != dep.Row && s != dep.Col {
			return fmt.Errorf("core: extract op %d produces scheme %s", i, s)
		}
		if op.CommBytes != 0 {
			return fmt.Errorf("core: extract op %d communicates", i)
		}
	case OpCompute:
		if op.Node == nil {
			return fmt.Errorf("core: compute op %d has no node", i)
		}
		if op.Node.Kind.IsAggregate() {
			if op.Output >= 0 || op.ScalarName == "" {
				return fmt.Errorf("core: aggregate op %d malformed", i)
			}
		} else if op.Output < 0 {
			return fmt.Errorf("core: compute op %d has no output", i)
		}
	case OpReference:
		// Reference is represented implicitly (direct value reuse); an
		// explicit reference op in a plan is unexpected.
		return fmt.Errorf("core: unexpected explicit reference op %d", i)
	default:
		return fmt.Errorf("core: op %d has unknown kind %v", i, op.Kind)
	}
	return nil
}
