package mio

import (
	"bytes"
	"testing"

	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// FuzzReadGrid drives ReadGrid with arbitrary bytes: truncations, bit flips
// and random garbage must all produce an error or a valid grid — never a
// panic, and never an allocation the input does not pay for (the reader
// bounds header-implied allocations and grows payload buffers incrementally).
// Valid inputs that parse must re-encode and re-parse to the same matrix.
func FuzzReadGrid(f *testing.F) {
	// Seed corpus: valid v1 and v2 streams over sparse, dense and mixed
	// grids, plus systematic truncations and bit flips of one of them.
	seeds := [][]byte{}
	add := func(b []byte) { seeds = append(seeds, b) }
	sparse := workload.SparseUniform(1, 20, 15, 6, 0.2)
	dense := workload.DenseRandom(2, 9, 9, 4)
	for _, g := range []*matrix.Grid{sparse, dense} {
		var v1, v2 bytes.Buffer
		if err := WriteGrid(&v1, g); err != nil {
			f.Fatal(err)
		}
		if err := WriteGridChecked(&v2, g); err != nil {
			f.Fatal(err)
		}
		add(v1.Bytes())
		add(v2.Bytes())
	}
	base := seeds[0]
	for _, cut := range []int{0, 3, 4, 11, 36, len(base) / 2, len(base) - 1} {
		if cut <= len(base) {
			add(append([]byte(nil), base[:cut]...))
		}
	}
	for _, off := range []int{4, 12, 20, 28, 36, 37, len(base) - 1} {
		if off < len(base) {
			flipped := append([]byte(nil), base...)
			flipped[off] ^= 0x81
			add(flipped)
		}
	}
	add([]byte("DMGR"))
	add([]byte{})
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGrid(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A parsed grid must be internally consistent and must round-trip
		// through the checked encoder.
		if g.Rows() <= 0 || g.Cols() <= 0 || g.BlockSize() <= 0 {
			t.Fatalf("parsed grid with bad dims %dx%d/bs=%d", g.Rows(), g.Cols(), g.BlockSize())
		}
		var buf bytes.Buffer
		if err := WriteGridChecked(&buf, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := ReadGrid(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if !matrix.GridEqual(g, g2, 0) {
			t.Fatal("re-encoded grid differs")
		}
	})
}
