package mio

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"dmac/internal/matrix"
	"dmac/internal/workload"
)

func TestCheckedRoundTrip(t *testing.T) {
	g := workload.SparseUniform(5, 30, 30, 10, 0.05)
	g.SetBlock(0, 1, matrix.NewDenseData(10, 10, func() []float64 {
		d := make([]float64, 100)
		rng := rand.New(rand.NewSource(3))
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		return d
	}()))
	var buf bytes.Buffer
	if err := WriteGridChecked(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.GridEqual(g, got, 0) {
		t.Error("checked round trip mismatch")
	}
	if got.Block(0, 0).IsSparse() != g.Block(0, 0).IsSparse() {
		t.Error("block representation lost")
	}
}

// Every single-byte flip anywhere in a checked stream's block region must be
// rejected; flips in the payload or stored CRC surface as ErrChecksum unless
// structural validation catches them first.
func TestCheckedDetectsBitFlips(t *testing.T) {
	g := workload.SparseUniform(6, 20, 20, 10, 0.2)
	var buf bytes.Buffer
	if err := WriteGridChecked(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	const headerLen = 4 + 4*8
	sawChecksumErr := false
	for off := headerLen; off < len(full); off++ {
		bad := append([]byte(nil), full...)
		bad[off] ^= 0x40
		got, err := ReadGrid(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at offset %d accepted; grid equal to original: %v",
				off, matrix.GridEqual(g, got, 0))
		}
		if errors.Is(err, ErrChecksum) {
			sawChecksumErr = true
		}
	}
	if !sawChecksumErr {
		t.Error("no flip surfaced as ErrChecksum")
	}
}

// The legacy unchecksummed format stays readable (old checkpoints and
// exports), and version dispatch is automatic.
func TestLegacyVersionStillReadable(t *testing.T) {
	g := workload.DenseRandom(7, 12, 9, 5)
	var buf bytes.Buffer
	if err := WriteGrid(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.GridEqual(g, got, 0) {
		t.Error("legacy round trip mismatch")
	}
}

func TestBlockChecksumMatchesStream(t *testing.T) {
	g := workload.SparseUniform(8, 10, 10, 10, 0.3)
	b := g.Block(0, 0)
	sum := BlockChecksum(b)
	if sum == 0 {
		t.Log("checksum is zero (legal but unusual)")
	}
	if BlockChecksum(b) != sum {
		t.Error("BlockChecksum not deterministic")
	}
	// A value change must change the checksum (CRC32C detects all single-bit
	// and most multi-bit errors; this is a smoke check, not a proof).
	d := b.Dense()
	d.Data[0] += 1
	if BlockChecksum(d) == BlockChecksum(b.Dense()) {
		t.Error("checksum did not change with block contents")
	}
}

// Hostile headers must be rejected before they force large allocations.
func TestHostileHeadersRejected(t *testing.T) {
	mk := func(rows, cols, bs uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString("DMGR")
		for _, v := range []uint64{1, rows, cols, bs} {
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
			buf.Write(b[:])
		}
		return buf.Bytes()
	}
	cases := []struct {
		name           string
		rows, cols, bs uint64
	}{
		{"zero rows", 0, 5, 2},
		{"dim over maxDim", 1 << 33, 5, 2},
		{"bs over maxDim", 5, 5, 1 << 33},
		{"block-count bomb", maxDim, maxDim, 1},
		{"colptr bomb", 1 << 30, 1 << 30, 1 << 30},
	}
	for _, tc := range cases {
		if _, err := ReadGrid(bytes.NewReader(mk(tc.rows, tc.cols, tc.bs))); err == nil {
			t.Errorf("%s: header %dx%d/bs=%d accepted", tc.name, tc.rows, tc.cols, tc.bs)
		}
	}
}
