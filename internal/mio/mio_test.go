package mio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dmac/internal/matrix"
	"dmac/internal/workload"
)

func TestMatrixMarketCoordinateRoundTrip(t *testing.T) {
	g := workload.SparseUniform(1, 40, 25, 8, 0.1)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coordinate real") {
		t.Error("sparse grid should write coordinate format")
	}
	got, err := ReadMatrixMarket(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.GridEqual(g, got, 0) {
		t.Error("coordinate round trip mismatch")
	}
}

func TestMatrixMarketArrayRoundTrip(t *testing.T) {
	g := workload.DenseRandom(2, 12, 9, 5)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "array real") {
		t.Error("dense grid should write array format")
	}
	got, err := ReadMatrixMarket(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.GridEqual(g, got, 0) {
		t.Error("array round trip mismatch")
	}
}

func TestMatrixMarketVariants(t *testing.T) {
	// Pattern + symmetric, with comments and blank lines.
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment

3 3 2
2 1
3 3
`
	g, err := ReadMatrixMarket(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 0) != 1 || g.At(0, 1) != 1 {
		t.Error("symmetric pattern entries not mirrored")
	}
	if g.At(2, 2) != 1 {
		t.Error("diagonal entry lost")
	}
	if g.NNZ() != 3 {
		t.Errorf("nnz = %d, want 3", g.NNZ())
	}
	// Integer field.
	in2 := "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n"
	g2, err := ReadMatrixMarket(strings.NewReader(in2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.At(0, 1) != 7 {
		t.Error("integer entry wrong")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"not a banner\n",
		"%%MatrixMarket vector coordinate real general\n1 1 0\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n",
		"%%MatrixMarket matrix coordinate real general\n2 2\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 3.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.0\n",
		"%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n",
		"%%MatrixMarket matrix array real general\n2 2\n1 2 3 bad\n",
		"%%MatrixMarket matrix unknown real general\n2 2 1\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in), 4); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestBinaryRoundTripMixed(t *testing.T) {
	// A grid with both sparse and dense blocks.
	g := workload.SparseUniform(3, 30, 30, 10, 0.05)
	g.SetBlock(1, 1, matrix.NewDenseData(10, 10, func() []float64 {
		d := make([]float64, 100)
		rng := rand.New(rand.NewSource(9))
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		return d
	}()))
	var buf bytes.Buffer
	if err := WriteGrid(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.GridEqual(g, got, 0) {
		t.Error("binary round trip mismatch")
	}
	// Representations are preserved exactly.
	if got.Block(0, 0).IsSparse() != g.Block(0, 0).IsSparse() {
		t.Error("sparse block representation lost")
	}
	if got.Block(1, 1).IsSparse() {
		t.Error("dense block representation lost")
	}
	if got.BlockSize() != g.BlockSize() {
		t.Error("block size lost")
	}
}

func TestBinaryErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadGrid(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("expected magic error")
	}
	// Truncated stream.
	g := workload.SparseUniform(4, 10, 10, 5, 0.2)
	var buf bytes.Buffer
	if err := WriteGrid(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 10, 30, len(full) - 5} {
		if _, err := ReadGrid(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("expected error for truncation at %d", cut)
		}
	}
	// Corrupt version.
	bad := append([]byte(nil), full...)
	bad[4] = 99
	if _, err := ReadGrid(bytes.NewReader(bad)); err == nil {
		t.Error("expected version error")
	}
}

// Property: binary round trip is the identity for random grids.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, bsRaw uint8, sparse bool) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		bs := 1 + int(bsRaw)%10
		var g *matrix.Grid
		if sparse {
			g = workload.SparseUniform(seed, rows, cols, bs, 0.3)
		} else {
			g = workload.DenseRandom(seed, rows, cols, bs)
		}
		var buf bytes.Buffer
		if err := WriteGrid(&buf, g); err != nil {
			return false
		}
		got, err := ReadGrid(&buf)
		if err != nil {
			return false
		}
		return matrix.GridEqual(g, got, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MatrixMarket round trip preserves values for random sparse
// grids.
func TestQuickMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(25), 1+rng.Intn(25)
		g := workload.SparseUniform(seed, rows, cols, 4, 0.2)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			return false
		}
		got, err := ReadMatrixMarket(&buf, 7) // different block size on purpose
		if err != nil {
			return false
		}
		return matrix.GridEqual(g, got, 1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
