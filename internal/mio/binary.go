package mio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"dmac/internal/matrix"
)

// Binary grid format, little-endian:
//
//	magic "DMGR" | version u32 | rows u64 | cols u64 | blockSize u64 |
//	then per block in row-major block order:
//	  kind u8 (0 dense, 1 CSC)
//	  dense: rows*cols f64
//	  CSC:   nnz u64, colPtr (cols+1) u32, rowIdx nnz u32, values nnz f64
//	  version 2 only: crc u32 — CRC32C over the block's kind byte and payload
//
// The format round-trips block representations exactly. Version 2 adds a
// per-block CRC32C so checkpointed session variables detect on-disk
// corruption end to end: a reader of a version-2 stream verifies every block
// before trusting it and fails with ErrChecksum on a mismatch.

const (
	binaryMagic = "DMGR"
	// binaryVersion is the legacy unchecksummed layout.
	binaryVersion = 1
	// binaryVersionChecked appends a CRC32C to every block.
	binaryVersionChecked = 2
)

// Reader hardening bounds. A header is attacker-controlled until its blocks
// verify, so everything the reader allocates eagerly from header fields is
// bounded before the allocation happens; payload-sized buffers grow
// incrementally with the bytes actually read, so a lying header costs memory
// proportional to the real input, never to its claims.
const (
	// maxDim keeps int conversions of dimensions safe on 32-bit platforms.
	maxDim = 1<<31 - 1
	// maxEmptyGridBytes caps the estimated footprint of the empty grid a
	// header implies (block headers plus per-block column-pointer arrays),
	// which matrix.NewGrid allocates before any payload byte is validated.
	maxEmptyGridBytes = 1 << 28
	// maxBlocks caps the block count a header may imply: constructing the
	// empty grid costs time and memory per block, and a hostile header must
	// not buy millions of block allocations with 36 bytes of input.
	maxBlocks = 1 << 20
	// emptyBlockOverheadBytes approximates the fixed cost of one empty block
	// (interface header, struct, slice headers).
	emptyBlockOverheadBytes = 96
)

// ErrChecksum reports a block whose stored CRC32C does not match its
// payload: the stream was corrupted after it was written. Recovery ladders
// test for it with errors.Is to distinguish corruption from truncation.
var ErrChecksum = errors.New("mio: block checksum mismatch")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BlockChecksum returns the CRC32C of a block's binary encoding — the same
// checksum a version-2 stream stores after the block. The distributed
// runtime uses it to verify blocks at shuffle hand-off without serializing
// them to disk.
func BlockChecksum(b matrix.Block) uint32 {
	h := crc32.New(castagnoli)
	// writeBlock only fails on writer errors; a hash never errors.
	_ = writeBlock(h, b)
	return h.Sum32()
}

// EncodeBlock returns the binary encoding of one block (kind byte plus
// payload) — the bytes a shuffle hand-off of the block would move, and the
// bytes BlockChecksum covers.
func EncodeBlock(b matrix.Block) []byte {
	var buf bytes.Buffer
	_ = writeBlock(&buf, b)
	return buf.Bytes()
}

// ChecksumBytes returns the CRC32C of raw bytes, matching BlockChecksum over
// a block's EncodeBlock encoding.
func ChecksumBytes(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}

// WriteGrid serializes a grid to the legacy (version 1, unchecksummed)
// binary format.
func WriteGrid(w io.Writer, g *matrix.Grid) error {
	return writeGrid(w, g, binaryVersion)
}

// WriteGridChecked serializes a grid to the version-2 format with a CRC32C
// per block, the layout checkpoints use: a reader verifies every block
// against its stored checksum and surfaces corruption as ErrChecksum.
func WriteGridChecked(w io.Writer, g *matrix.Grid) error {
	return writeGrid(w, g, binaryVersionChecked)
}

func writeGrid(w io.Writer, g *matrix.Grid, version uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint64{version, uint64(g.Rows()), uint64(g.Cols()), uint64(g.BlockSize())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for bi := 0; bi < g.BlockRows(); bi++ {
		for bj := 0; bj < g.BlockCols(); bj++ {
			if version == binaryVersionChecked {
				h := crc32.New(castagnoli)
				if err := writeBlock(io.MultiWriter(bw, h), g.Block(bi, bj)); err != nil {
					return err
				}
				if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
					return err
				}
			} else if err := writeBlock(bw, g.Block(bi, bj)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeBlock(w io.Writer, b matrix.Block) error {
	switch t := b.(type) {
	case *matrix.DenseBlock:
		if _, err := w.Write([]byte{0}); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, t.Data)
	case *matrix.CSCBlock:
		if _, err := w.Write([]byte{1}); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(t.NNZ())); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, t.ColPtr); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, t.RowIdx); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, t.Values)
	default:
		// Unknown implementations serialize densely.
		if _, err := w.Write([]byte{0}); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, b.Dense().Data)
	}
}

// ReadGrid deserializes a grid written by WriteGrid or WriteGridChecked
// (version dispatch is automatic). Corrupt input of any shape — truncation,
// bit flips, hostile headers — yields an error, never a panic, and never an
// allocation larger than the input justifies; checksum mismatches in a
// version-2 stream are reported as ErrChecksum.
func ReadGrid(r io.Reader) (*matrix.Grid, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mio: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("mio: bad magic %q", magic)
	}
	var version, rows, cols, bs uint64
	for _, p := range []*uint64{&version, &rows, &cols, &bs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("mio: reading header: %w", err)
		}
	}
	if version != binaryVersion && version != binaryVersionChecked {
		return nil, fmt.Errorf("mio: unsupported version %d", version)
	}
	if rows == 0 || cols == 0 || bs == 0 || rows > maxDim || cols > maxDim || bs > maxDim {
		return nil, fmt.Errorf("mio: implausible dimensions %dx%d/bs=%d", rows, cols, bs)
	}
	if err := boundEmptyGrid(rows, cols, bs); err != nil {
		return nil, err
	}
	g := matrix.NewGrid(int(rows), int(cols), int(bs))
	checked := version == binaryVersionChecked
	for bi := 0; bi < g.BlockRows(); bi++ {
		for bj := 0; bj < g.BlockCols(); bj++ {
			br2, bc2 := g.BlockDims(bi, bj)
			blk, err := readBlockChecked(br, br2, bc2, checked)
			if err != nil {
				return nil, fmt.Errorf("mio: block (%d,%d): %w", bi, bj, err)
			}
			g.SetBlock(bi, bj, blk)
		}
	}
	return g, nil
}

// boundEmptyGrid rejects headers whose empty grid alone (before any payload
// is read) would exceed maxEmptyGridBytes: one empty CSC block per grid cell,
// each carrying a (blockCols+1)-entry column-pointer array.
func boundEmptyGrid(rows, cols, bs uint64) error {
	brows := (rows + bs - 1) / bs
	bcols := (cols + bs - 1) / bs
	blocks := brows * bcols
	if brows > 0 && (blocks/brows != bcols || blocks > maxBlocks) {
		return fmt.Errorf("mio: implausible block count %dx%d", brows, bcols)
	}
	// Per block row: bcols block overheads plus column pointers covering all
	// cols (4 bytes each) plus one extra pointer per block.
	perBlockRow := bcols*emptyBlockOverheadBytes + 4*(cols+bcols)
	if brows > 0 && perBlockRow > maxEmptyGridBytes/brows {
		return fmt.Errorf("mio: header implies > %d bytes of empty grid (%dx%d/bs=%d)",
			maxEmptyGridBytes, rows, cols, bs)
	}
	return nil
}

// readBlockChecked reads one block, verifying its trailing CRC32C when
// checked is set.
func readBlockChecked(r io.Reader, rows, cols int, checked bool) (matrix.Block, error) {
	if !checked {
		return readBlock(r, rows, cols)
	}
	h := crc32.New(castagnoli)
	blk, err := readBlock(io.TeeReader(r, h), rows, cols)
	if err != nil {
		return nil, err
	}
	var want uint32
	if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("reading checksum: %w", err)
	}
	if got := h.Sum32(); got != want {
		return nil, fmt.Errorf("%w: got %08x, stored %08x", ErrChecksum, got, want)
	}
	return blk, nil
}

// readChunkElems bounds how many elements each incremental read step
// allocates, so buffer growth tracks bytes actually present in the input.
const readChunkElems = 64 * 1024

// readFloat64s reads n little-endian float64s, growing the destination
// incrementally so a lying header cannot force an up-front allocation larger
// than the real input.
func readFloat64s(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, minInt(n, readChunkElems))
	buf := make([]byte, 8*minInt(n, readChunkElems))
	for len(out) < n {
		step := minInt(n-len(out), readChunkElems)
		if _, err := io.ReadFull(r, buf[:8*step]); err != nil {
			return nil, err
		}
		for i := 0; i < step; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
		}
	}
	return out, nil
}

// readInt32s is readFloat64s for little-endian int32s.
func readInt32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, minInt(n, readChunkElems))
	buf := make([]byte, 4*minInt(n, readChunkElems))
	for len(out) < n {
		step := minInt(n-len(out), readChunkElems)
		if _, err := io.ReadFull(r, buf[:4*step]); err != nil {
			return nil, err
		}
		for i := 0; i < step; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func readBlock(r io.Reader, rows, cols int) (matrix.Block, error) {
	kind := make([]byte, 1)
	if _, err := io.ReadFull(r, kind); err != nil {
		return nil, err
	}
	// Element counts are computed in uint64 and bounded to int32 range so
	// block-local int arithmetic cannot overflow on 32-bit platforms.
	elems := uint64(rows) * uint64(cols)
	if elems > math.MaxInt32 {
		return nil, fmt.Errorf("block %dx%d too large", rows, cols)
	}
	switch kind[0] {
	case 0:
		data, err := readFloat64s(r, int(elems))
		if err != nil {
			return nil, err
		}
		for _, v := range data {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("NaN in dense block")
			}
		}
		d := matrix.NewDense(rows, cols)
		copy(d.Data, data)
		return d, nil
	case 1:
		var nnz uint64
		if err := binary.Read(r, binary.LittleEndian, &nnz); err != nil {
			return nil, err
		}
		if nnz > elems {
			return nil, fmt.Errorf("nnz %d exceeds block capacity", nnz)
		}
		colPtr, err := readInt32s(r, cols+1)
		if err != nil {
			return nil, err
		}
		rowIdx, err := readInt32s(r, int(nnz))
		if err != nil {
			return nil, err
		}
		values, err := readFloat64s(r, int(nnz))
		if err != nil {
			return nil, err
		}
		// Validate structure before trusting it.
		if colPtr[0] != 0 || colPtr[cols] != int32(nnz) {
			return nil, fmt.Errorf("corrupt column pointers")
		}
		for c := 0; c < cols; c++ {
			if colPtr[c] > colPtr[c+1] {
				return nil, fmt.Errorf("non-monotonic column pointers")
			}
		}
		coords := make([]matrix.Coord, 0, nnz)
		for c := 0; c < cols; c++ {
			for k := colPtr[c]; k < colPtr[c+1]; k++ {
				ri := int(rowIdx[k])
				if ri < 0 || ri >= rows {
					return nil, fmt.Errorf("row index %d out of range", ri)
				}
				coords = append(coords, matrix.Coord{Row: ri, Col: c, Val: values[k]})
			}
		}
		return matrix.NewCSC(rows, cols, coords), nil
	default:
		return nil, fmt.Errorf("unknown block kind %d", kind[0])
	}
}
