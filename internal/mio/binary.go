package mio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dmac/internal/matrix"
)

// Binary grid format, little-endian:
//
//	magic "DMGR" | version u32 | rows u64 | cols u64 | blockSize u64 |
//	then per block in row-major block order:
//	  kind u8 (0 dense, 1 CSC)
//	  dense: rows*cols f64
//	  CSC:   nnz u64, colPtr (cols+1) u32, rowIdx nnz u32, values nnz f64
//
// The format round-trips block representations exactly, making it suitable
// for checkpointing session variables.

const (
	binaryMagic   = "DMGR"
	binaryVersion = 1
)

// WriteGrid serializes a grid to the binary format.
func WriteGrid(w io.Writer, g *matrix.Grid) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint64{binaryVersion, uint64(g.Rows()), uint64(g.Cols()), uint64(g.BlockSize())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for bi := 0; bi < g.BlockRows(); bi++ {
		for bj := 0; bj < g.BlockCols(); bj++ {
			if err := writeBlock(bw, g.Block(bi, bj)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeBlock(w io.Writer, b matrix.Block) error {
	switch t := b.(type) {
	case *matrix.DenseBlock:
		if _, err := w.Write([]byte{0}); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, t.Data)
	case *matrix.CSCBlock:
		if _, err := w.Write([]byte{1}); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(t.NNZ())); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, t.ColPtr); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, t.RowIdx); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, t.Values)
	default:
		// Unknown implementations serialize densely.
		if _, err := w.Write([]byte{0}); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, b.Dense().Data)
	}
}

// ReadGrid deserializes a grid written by WriteGrid.
func ReadGrid(r io.Reader) (*matrix.Grid, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mio: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("mio: bad magic %q", magic)
	}
	var version, rows, cols, bs uint64
	for _, p := range []*uint64{&version, &rows, &cols, &bs} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("mio: reading header: %w", err)
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("mio: unsupported version %d", version)
	}
	const maxDim = 1 << 32
	if rows == 0 || cols == 0 || bs == 0 || rows > maxDim || cols > maxDim || bs > maxDim {
		return nil, fmt.Errorf("mio: implausible dimensions %dx%d/bs=%d", rows, cols, bs)
	}
	g := matrix.NewGrid(int(rows), int(cols), int(bs))
	for bi := 0; bi < g.BlockRows(); bi++ {
		for bj := 0; bj < g.BlockCols(); bj++ {
			br2, bc2 := g.BlockDims(bi, bj)
			blk, err := readBlock(br, br2, bc2)
			if err != nil {
				return nil, fmt.Errorf("mio: block (%d,%d): %w", bi, bj, err)
			}
			g.SetBlock(bi, bj, blk)
		}
	}
	return g, nil
}

func readBlock(r io.Reader, rows, cols int) (matrix.Block, error) {
	kind := make([]byte, 1)
	if _, err := io.ReadFull(r, kind); err != nil {
		return nil, err
	}
	switch kind[0] {
	case 0:
		d := matrix.NewDense(rows, cols)
		if err := binary.Read(r, binary.LittleEndian, d.Data); err != nil {
			return nil, err
		}
		for _, v := range d.Data {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("NaN in dense block")
			}
		}
		return d, nil
	case 1:
		var nnz uint64
		if err := binary.Read(r, binary.LittleEndian, &nnz); err != nil {
			return nil, err
		}
		if nnz > uint64(rows)*uint64(cols) {
			return nil, fmt.Errorf("nnz %d exceeds block capacity", nnz)
		}
		colPtr := make([]int32, cols+1)
		if err := binary.Read(r, binary.LittleEndian, colPtr); err != nil {
			return nil, err
		}
		rowIdx := make([]int32, nnz)
		if err := binary.Read(r, binary.LittleEndian, rowIdx); err != nil {
			return nil, err
		}
		values := make([]float64, nnz)
		if err := binary.Read(r, binary.LittleEndian, values); err != nil {
			return nil, err
		}
		// Validate structure before trusting it.
		if colPtr[0] != 0 || colPtr[cols] != int32(nnz) {
			return nil, fmt.Errorf("corrupt column pointers")
		}
		for c := 0; c < cols; c++ {
			if colPtr[c] > colPtr[c+1] {
				return nil, fmt.Errorf("non-monotonic column pointers")
			}
		}
		coords := make([]matrix.Coord, 0, nnz)
		for c := 0; c < cols; c++ {
			for k := colPtr[c]; k < colPtr[c+1]; k++ {
				ri := int(rowIdx[k])
				if ri < 0 || ri >= rows {
					return nil, fmt.Errorf("row index %d out of range", ri)
				}
				coords = append(coords, matrix.Coord{Row: ri, Col: c, Val: values[k]})
			}
		}
		return matrix.NewCSC(rows, cols, coords), nil
	default:
		return nil, fmt.Errorf("unknown block kind %d", kind[0])
	}
}
