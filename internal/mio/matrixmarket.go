// Package mio provides matrix input/output: the MatrixMarket exchange
// format (the lingua franca for sparse matrix datasets such as the paper's
// graph collections) and a compact binary format for checkpointing grids.
package mio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dmac/internal/matrix"
)

// mmHeader is the banner every MatrixMarket file starts with.
const mmHeader = "%%MatrixMarket"

// ReadMatrixMarket parses a MatrixMarket stream into a grid with the given
// block size. Supported variants: object "matrix", formats "coordinate" and
// "array", field "real" | "integer" | "pattern", symmetry "general" |
// "symmetric" (symmetric entries are mirrored).
func ReadMatrixMarket(r io.Reader, blockSize int) (*matrix.Grid, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("mio: empty input: %w", sc.Err())
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 4 || !strings.HasPrefix(sc.Text(), mmHeader) {
		return nil, fmt.Errorf("mio: not a MatrixMarket file: %q", sc.Text())
	}
	if banner[1] != "matrix" {
		return nil, fmt.Errorf("mio: unsupported object %q", banner[1])
	}
	format := banner[2]
	field := banner[3]
	symmetry := "general"
	if len(banner) >= 5 {
		symmetry = banner[4]
	}
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mio: unsupported field %q", field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("mio: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("mio: missing size line")
	}
	sizes := strings.Fields(sizeLine)

	switch format {
	case "coordinate":
		if len(sizes) != 3 {
			return nil, fmt.Errorf("mio: coordinate size line %q", sizeLine)
		}
		rows, err1 := strconv.Atoi(sizes[0])
		cols, err2 := strconv.Atoi(sizes[1])
		nnz, err3 := strconv.Atoi(sizes[2])
		if err1 != nil || err2 != nil || err3 != nil || rows <= 0 || cols <= 0 || nnz < 0 {
			return nil, fmt.Errorf("mio: bad coordinate sizes %q", sizeLine)
		}
		coords := make([]matrix.Coord, 0, nnz)
		read := 0
		for read < nnz && sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			f := strings.Fields(line)
			want := 3
			if field == "pattern" {
				want = 2
			}
			if len(f) < want {
				return nil, fmt.Errorf("mio: short entry %q", line)
			}
			i, err1 := strconv.Atoi(f[0])
			j, err2 := strconv.Atoi(f[1])
			if err1 != nil || err2 != nil || i < 1 || i > rows || j < 1 || j > cols {
				return nil, fmt.Errorf("mio: bad entry indices %q", line)
			}
			v := 1.0
			if field != "pattern" {
				var err error
				v, err = strconv.ParseFloat(f[2], 64)
				if err != nil {
					return nil, fmt.Errorf("mio: bad entry value %q: %v", line, err)
				}
			}
			coords = append(coords, matrix.Coord{Row: i - 1, Col: j - 1, Val: v})
			if symmetry == "symmetric" && i != j {
				coords = append(coords, matrix.Coord{Row: j - 1, Col: i - 1, Val: v})
			}
			read++
		}
		if read < nnz {
			return nil, fmt.Errorf("mio: expected %d entries, got %d: %w", nnz, read, io.ErrUnexpectedEOF)
		}
		return matrix.FromCoords(rows, cols, blockSize, coords), nil

	case "array":
		if len(sizes) != 2 {
			return nil, fmt.Errorf("mio: array size line %q", sizeLine)
		}
		rows, err1 := strconv.Atoi(sizes[0])
		cols, err2 := strconv.Atoi(sizes[1])
		if err1 != nil || err2 != nil || rows <= 0 || cols <= 0 {
			return nil, fmt.Errorf("mio: bad array sizes %q", sizeLine)
		}
		data := make([]float64, rows*cols)
		// Array format is column-major.
		for k := 0; k < rows*cols; {
			if !sc.Scan() {
				return nil, fmt.Errorf("mio: expected %d values, got %d: %w", rows*cols, k, io.ErrUnexpectedEOF)
			}
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			for _, tok := range strings.Fields(line) {
				if k >= rows*cols {
					break
				}
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, fmt.Errorf("mio: bad value %q: %v", tok, err)
				}
				i, j := k%rows, k/rows
				data[i*cols+j] = v
				k++
			}
		}
		return matrix.FromDense(rows, cols, blockSize, data), nil

	default:
		return nil, fmt.Errorf("mio: unsupported format %q", format)
	}
}

// WriteMatrixMarket writes a grid in MatrixMarket format: coordinate/real
// when the grid is stored sparsely enough to benefit, array/real otherwise.
func WriteMatrixMarket(w io.Writer, g *matrix.Grid) error {
	bw := bufio.NewWriter(w)
	rows, cols := g.Rows(), g.Cols()
	nnz := g.NNZ()
	sparse := int64(nnz)*2 < int64(rows)*int64(cols)
	if sparse {
		if _, err := fmt.Fprintf(bw, "%s matrix coordinate real general\n%d %d %d\n", mmHeader, rows, cols, nnz); err != nil {
			return err
		}
		for bi := 0; bi < g.BlockRows(); bi++ {
			for bj := 0; bj < g.BlockCols(); bj++ {
				r0, c0 := bi*g.BlockSize(), bj*g.BlockSize()
				b := g.Block(bi, bj)
				switch t := b.(type) {
				case *matrix.CSCBlock:
					var err error
					t.EachNZ(func(i, j int, v float64) {
						if err == nil {
							_, err = fmt.Fprintf(bw, "%d %d %.17g\n", r0+i+1, c0+j+1, v)
						}
					})
					if err != nil {
						return err
					}
				default:
					for i := 0; i < b.Rows(); i++ {
						for j := 0; j < b.Cols(); j++ {
							if v := b.At(i, j); v != 0 {
								if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", r0+i+1, c0+j+1, v); err != nil {
									return err
								}
							}
						}
					}
				}
			}
		}
		return bw.Flush()
	}
	if _, err := fmt.Fprintf(bw, "%s matrix array real general\n%d %d\n", mmHeader, rows, cols); err != nil {
		return err
	}
	// Column-major per the format definition.
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			if _, err := fmt.Fprintf(bw, "%.17g\n", g.At(i, j)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
