package serve

import (
	"math"
	"testing"
	"time"

	"dmac/internal/obs"
)

// fixedClock pins the sloTracker's notion of now for deterministic window
// math; advance moves it forward.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time          { return c.t }
func (c *fixedClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker(def SLOConfig, configs map[string]SLOConfig) (*sloTracker, *fixedClock) {
	tr := newSLOTracker(def, configs)
	clk := &fixedClock{t: time.Unix(1_000_000, 0)}
	tr.now = clk.now
	return tr, clk
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSLODefaults(t *testing.T) {
	cfg := SLOConfig{}.withDefaults(SLOConfig{})
	if cfg.Objective != defaultSLOObjective || cfg.LatencySec != defaultSLOLatencySec {
		t.Fatalf("built-in defaults not applied: %+v", cfg)
	}
	cfg = SLOConfig{}.withDefaults(SLOConfig{Objective: 0.9, LatencySec: 2})
	if cfg.Objective != 0.9 || cfg.LatencySec != 2 {
		t.Fatalf("service default not applied: %+v", cfg)
	}
	// Out-of-range objectives fall through to the default.
	cfg = SLOConfig{Objective: 1.5}.withDefaults(SLOConfig{Objective: 0.95, LatencySec: 3})
	if cfg.Objective != 0.95 {
		t.Fatalf("out-of-range objective kept: %+v", cfg)
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	// Objective 0.9 → error budget 0.1. 10 jobs, 1 failed, 1 slow →
	// bad rate 0.2 → burn rate 2.0 in both windows.
	tr, _ := newTestTracker(SLOConfig{Objective: 0.9, LatencySec: 1.0}, nil)
	for i := 0; i < 8; i++ {
		tr.record("a", 0.5, false)
	}
	tr.record("a", 0.5, true)  // failed
	tr.record("a", 2.0, false) // slow
	snap := tr.snapshot()
	ten, ok := snap.Tenants["a"]
	if !ok {
		t.Fatal("tenant missing from snapshot")
	}
	if ten.Objective != 0.9 || ten.LatencyObjectiveSec != 1.0 {
		t.Fatalf("objectives: %+v", ten)
	}
	for name, w := range ten.Windows {
		if w.Count != 10 || w.Errors != 1 || w.Slow != 1 {
			t.Fatalf("%s window counts: %+v", name, w)
		}
		if !almostEq(w.ErrorRate, 0.1) || !almostEq(w.SlowRate, 0.1) || !almostEq(w.BadRate, 0.2) {
			t.Fatalf("%s window rates: %+v", name, w)
		}
		if !almostEq(w.BurnRate, 2.0) {
			t.Fatalf("%s burn rate = %v, want 2.0", name, w.BurnRate)
		}
		wantMean := (8*0.5 + 0.5 + 2.0) / 10
		if !almostEq(w.MeanLatencySec, wantMean) {
			t.Fatalf("%s mean latency = %v, want %v", name, w.MeanLatencySec, wantMean)
		}
	}
}

// TestSLOFailedNotDoubleCounted: a failed job that is also over the latency
// objective is bad once (as an error), not twice.
func TestSLOFailedNotDoubleCounted(t *testing.T) {
	tr, _ := newTestTracker(SLOConfig{Objective: 0.9, LatencySec: 1.0}, nil)
	tr.record("a", 50.0, true)
	w := tr.snapshot().Tenants["a"].Windows["5m"]
	if w.Errors != 1 || w.Slow != 0 || !almostEq(w.BadRate, 1.0) {
		t.Fatalf("window: %+v", w)
	}
}

// TestSLOWindowExpiry: events age out of the 5m window but remain in the 1h
// window, then age out of both.
func TestSLOWindowExpiry(t *testing.T) {
	tr, clk := newTestTracker(SLOConfig{Objective: 0.99, LatencySec: 5}, nil)
	tr.record("a", 0.1, true)

	win := func(name string) SLOWindow { return tr.snapshot().Tenants["a"].Windows[name] }
	if w := win("5m"); w.Count != 1 || w.Errors != 1 {
		t.Fatalf("fresh 5m window: %+v", w)
	}

	clk.advance(6 * time.Minute)
	if w := win("5m"); w.Count != 0 {
		t.Fatalf("5m window after 6m: %+v", w)
	}
	if w := win("1h"); w.Count != 1 || w.Errors != 1 || !almostEq(w.BurnRate, 1.0/0.01) {
		t.Fatalf("1h window after 6m: %+v", w)
	}

	clk.advance(time.Hour)
	if w := win("1h"); w.Count != 0 || w.BurnRate != 0 {
		t.Fatalf("1h window after 66m: %+v", w)
	}
}

// TestSLORingReuse: a bucket slot reused a full ring period later must not
// leak the stale epoch's counts into the new window.
func TestSLORingReuse(t *testing.T) {
	tr, clk := newTestTracker(SLOConfig{Objective: 0.99, LatencySec: 5}, nil)
	tr.record("a", 0.1, true)
	// Advance exactly one ring period: the new record lands in the same slot.
	clk.advance(sloRingLen * sloBucketSec * time.Second)
	tr.record("a", 0.1, false)
	w := tr.snapshot().Tenants["a"].Windows["1h"]
	if w.Count != 1 || w.Errors != 0 {
		t.Fatalf("stale bucket leaked into reused slot: %+v", w)
	}
}

// TestSLOPerTenantConfig: per-tenant overrides beat the service default, and
// tenants are tracked independently.
func TestSLOPerTenantConfig(t *testing.T) {
	tr, _ := newTestTracker(
		SLOConfig{Objective: 0.99, LatencySec: 5},
		map[string]SLOConfig{"strict": {Objective: 0.999, LatencySec: 0.1}},
	)
	tr.record("strict", 0.5, false) // slow under strict's 0.1s objective
	tr.record("lax", 0.5, false)    // fine under the 5s default
	snap := tr.snapshot()
	if w := snap.Tenants["strict"].Windows["5m"]; w.Slow != 1 || !almostEq(w.BurnRate, 1.0/0.001) {
		t.Fatalf("strict window: %+v", w)
	}
	if w := snap.Tenants["lax"].Windows["5m"]; w.Slow != 0 || w.BurnRate != 0 {
		t.Fatalf("lax window: %+v", w)
	}
	if snap.Tenants["strict"].Objective != 0.999 || snap.Tenants["lax"].Objective != 0.99 {
		t.Fatalf("objectives: %+v", snap.Tenants)
	}
}

func testSpans(name string) []obs.Span {
	return []obs.Span{{Name: name, Cat: "test"}}
}

func TestFlightRecorderRing(t *testing.T) {
	f := newFlightRecorder(2)
	f.record("j1", testSpans("a"))
	f.record("j2", testSpans("b"))
	if got := f.ids(); len(got) != 2 || got[0] != "j1" || got[1] != "j2" {
		t.Fatalf("ids = %v", got)
	}
	// Third job evicts the oldest.
	f.record("j3", testSpans("c"))
	if _, ok := f.get("j1"); ok {
		t.Fatal("j1 not evicted")
	}
	if sp, ok := f.get("j3"); !ok || sp[0].Name != "c" {
		t.Fatalf("j3 = %v %v", sp, ok)
	}
	// Re-recording an existing ID overwrites in place without eviction.
	f.record("j3", testSpans("c2"))
	if sp, _ := f.get("j3"); sp[0].Name != "c2" {
		t.Fatalf("j3 after overwrite = %v", sp)
	}
	if got := f.ids(); len(got) != 2 || got[0] != "j2" {
		t.Fatalf("ids after overwrite = %v", got)
	}
	// Empty span sets are not recorded; nil recorder is a no-op.
	f.record("j4", nil)
	if _, ok := f.get("j4"); ok {
		t.Fatal("empty trace recorded")
	}
	var nilRec *flightRecorder
	nilRec.record("x", testSpans("x"))
	if _, ok := nilRec.get("x"); ok {
		t.Fatal("nil recorder stored a trace")
	}
}
