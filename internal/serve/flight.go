package serve

import (
	"sync"

	"dmac/internal/obs"
)

// flightRecorder is the always-on trace ring: the finished span tree of
// every completed job, kept for the most recent N jobs, so GET
// /v1/jobs/{id}/trace can hand back a Chrome trace for any recent job
// without restarting the server or passing flags up front. Each engine slot
// owns a private tracer and runs one job at a time, so a slot's spans
// between job start and finish are exactly that job's tree; runJob drains
// the tracer into the recorder at the terminal transition, which also bounds
// tracer memory over a server's lifetime.
type flightRecorder struct {
	mu       sync.Mutex
	capacity int
	order    []string // job IDs, oldest first
	traces   map[string][]obs.Span
}

const defaultFlightRecorderJobs = 256

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightRecorderJobs
	}
	return &flightRecorder{capacity: capacity, traces: make(map[string][]obs.Span)}
}

// record stores one job's spans, evicting the oldest recorded job when full.
func (f *flightRecorder) record(id string, spans []obs.Span) {
	if f == nil || len(spans) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, exists := f.traces[id]; !exists {
		for len(f.order) >= f.capacity {
			evict := f.order[0]
			f.order = f.order[1:]
			delete(f.traces, evict)
		}
		f.order = append(f.order, id)
	}
	f.traces[id] = spans
}

// get returns the recorded spans for a job, if still in the ring.
func (f *flightRecorder) get(id string) ([]obs.Span, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	spans, ok := f.traces[id]
	return spans, ok
}

// ids returns the recorded job IDs, oldest first.
func (f *flightRecorder) ids() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}
