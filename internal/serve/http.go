package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/workload"
)

// SubmitRequest is the POST /v1/jobs body. Only registry workloads are
// submittable over HTTP; programmatic jobs are an in-process API.
type SubmitRequest struct {
	Tenant      string             `json:"tenant"`
	Workload    string             `json:"workload"`
	Params      map[string]float64 `json:"params,omitempty"`
	Priority    int                `json:"priority,omitempty"`
	DeadlineSec float64            `json:"deadline_sec,omitempty"`
}

// OutputSummary describes one result grid without shipping its blocks:
// enough for a client to sanity-check a result (and for small outputs, the
// dense cells themselves).
type OutputSummary struct {
	Rows int     `json:"rows"`
	Cols int     `json:"cols"`
	NNZ  int     `json:"nnz"`
	Sum  float64 `json:"sum"`
	// Data is the row-major dense content, included only when the grid has
	// at most maxInlineCells cells.
	Data []float64 `json:"data,omitempty"`
}

const maxInlineCells = 4096

// JobResponse is the job payload for submit/status/cancel responses; Outputs
// is populated for terminal jobs when the result is requested.
type JobResponse struct {
	JobStatus
	Outputs map[string]OutputSummary `json:"outputs,omitempty"`
}

type errorResponse struct {
	Error         string  `json:"error"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs            submit a registry workload
//	GET    /v1/jobs            list jobs (?tenant= and ?state= filters)
//	GET    /v1/jobs/{id}       job status (?include=result adds output summaries)
//	GET    /v1/jobs/{id}/trace Chrome-trace JSON from the flight recorder
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/stats           service statistics
//	GET    /v1/slo             per-tenant rolling SLO windows and burn rates
//	GET    /v1/workloads       registered workloads
//	GET    /metrics            Prometheus text-format exposition
//	GET    /healthz            liveness (503 while draining)
//
// Every request is logged through the service logger (method, path, status,
// duration) at debug level, with non-2xx responses at info.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/slo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.SLO())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		_ = obs.WritePrometheus(w, s.opts.Metrics.Snapshot())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		type wl struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		}
		var list []wl
		for _, name := range s.Registry().Names() {
			e, _ := s.Registry().Lookup(name)
			list = append(list, wl{Name: e.Name, Description: e.Description})
		}
		writeJSON(w, http.StatusOK, list)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s.logRequests(mux)
}

// statusRecorder captures the response code for request logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// logRequests wraps the API mux with structured request logging.
func (s *Service) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		attrs := []any{
			"method", r.Method, "path", r.URL.Path, "status", rec.status,
			"duration_sec", time.Since(start).Seconds(), "remote", r.RemoteAddr,
		}
		if rec.status >= 400 {
			s.logger.Info("http request", attrs...)
		} else {
			s.logger.Debug("http request", attrs...)
		}
	})
}

// handleList serves GET /v1/jobs: all known jobs, optionally filtered by
// ?tenant= and ?state=.
func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	state := State(r.URL.Query().Get("state"))
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown state %q", state)})
		return
	}
	jobs := s.ListJobs(r.URL.Query().Get("tenant"), state)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs, "count": len(jobs)})
}

// handleTrace serves GET /v1/jobs/{id}/trace: the flight recorder's span
// tree for the job as Chrome trace_event JSON (loadable in chrome://tracing
// and Perfetto).
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans, err := s.JobTrace(id)
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrNotFinished):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	default: // evicted from the ring
		writeJSON(w, http.StatusGone, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, spans)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.Workload == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "workload is required"})
		return
	}
	st, err := s.Submit(JobSpec{
		Tenant:   req.Tenant,
		Workload: req.Workload,
		Params:   workload.Params(req.Params),
		Priority: req.Priority,
		Deadline: time.Duration(req.DeadlineSec * float64(time.Second)),
	})
	if err != nil {
		var rej *Rejection
		if errors.As(err, &rej) {
			code := http.StatusTooManyRequests
			if !rej.Retryable {
				if rej.Reason == "service draining" {
					code = http.StatusServiceUnavailable
				} else {
					code = http.StatusForbidden
				}
			}
			if rej.RetryAfter > 0 {
				w.Header().Set("Retry-After", fmt.Sprintf("%d", int(rej.RetryAfter.Seconds())+1))
			}
			writeJSON(w, code, errorResponse{Error: rej.Error(), RetryAfterSec: rej.RetryAfter.Seconds()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, JobResponse{JobStatus: st})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Status(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	resp := JobResponse{JobStatus: st}
	if r.URL.Query().Get("include") == "result" && st.State == StateDone {
		if res, err := s.Result(id); err == nil {
			resp.Outputs = make(map[string]OutputSummary, len(res.Grids))
			for name, g := range res.Grids {
				resp.Outputs[name] = summarize(g)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, JobResponse{JobStatus: st})
}

func summarize(g *matrix.Grid) OutputSummary {
	o := OutputSummary{Rows: g.Rows(), Cols: g.Cols(), NNZ: g.NNZ(), Sum: matrix.SumGrid(g)}
	if g.Rows()*g.Cols() <= maxInlineCells {
		o.Data = g.ToDense()
	}
	return o
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
