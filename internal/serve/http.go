package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// SubmitRequest is the POST /v1/jobs body. Only registry workloads are
// submittable over HTTP; programmatic jobs are an in-process API.
type SubmitRequest struct {
	Tenant      string             `json:"tenant"`
	Workload    string             `json:"workload"`
	Params      map[string]float64 `json:"params,omitempty"`
	Priority    int                `json:"priority,omitempty"`
	DeadlineSec float64            `json:"deadline_sec,omitempty"`
}

// OutputSummary describes one result grid without shipping its blocks:
// enough for a client to sanity-check a result (and for small outputs, the
// dense cells themselves).
type OutputSummary struct {
	Rows int     `json:"rows"`
	Cols int     `json:"cols"`
	NNZ  int     `json:"nnz"`
	Sum  float64 `json:"sum"`
	// Data is the row-major dense content, included only when the grid has
	// at most maxInlineCells cells.
	Data []float64 `json:"data,omitempty"`
}

const maxInlineCells = 4096

// JobResponse is the job payload for submit/status/cancel responses; Outputs
// is populated for terminal jobs when the result is requested.
type JobResponse struct {
	JobStatus
	Outputs map[string]OutputSummary `json:"outputs,omitempty"`
}

type errorResponse struct {
	Error         string  `json:"error"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs      submit a registry workload
//	GET    /v1/jobs/{id} job status (?include=result adds output summaries)
//	DELETE /v1/jobs/{id} cancel
//	GET    /v1/stats     service statistics
//	GET    /v1/workloads registered workloads
//	GET    /healthz      liveness (503 while draining)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		type wl struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		}
		var list []wl
		for _, name := range s.Registry().Names() {
			e, _ := s.Registry().Lookup(name)
			list = append(list, wl{Name: e.Name, Description: e.Description})
		}
		writeJSON(w, http.StatusOK, list)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.Workload == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "workload is required"})
		return
	}
	st, err := s.Submit(JobSpec{
		Tenant:   req.Tenant,
		Workload: req.Workload,
		Params:   workload.Params(req.Params),
		Priority: req.Priority,
		Deadline: time.Duration(req.DeadlineSec * float64(time.Second)),
	})
	if err != nil {
		var rej *Rejection
		if errors.As(err, &rej) {
			code := http.StatusTooManyRequests
			if !rej.Retryable {
				if rej.Reason == "service draining" {
					code = http.StatusServiceUnavailable
				} else {
					code = http.StatusForbidden
				}
			}
			if rej.RetryAfter > 0 {
				w.Header().Set("Retry-After", fmt.Sprintf("%d", int(rej.RetryAfter.Seconds())+1))
			}
			writeJSON(w, code, errorResponse{Error: rej.Error(), RetryAfterSec: rej.RetryAfter.Seconds()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, JobResponse{JobStatus: st})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Status(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	resp := JobResponse{JobStatus: st}
	if r.URL.Query().Get("include") == "result" && st.State == StateDone {
		if res, err := s.Result(id); err == nil {
			resp.Outputs = make(map[string]OutputSummary, len(res.Grids))
			for name, g := range res.Grids {
				resp.Outputs[name] = summarize(g)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, JobResponse{JobStatus: st})
}

func summarize(g *matrix.Grid) OutputSummary {
	o := OutputSummary{Rows: g.Rows(), Cols: g.Cols(), NNZ: g.NNZ(), Sum: matrix.SumGrid(g)}
	if g.Rows()*g.Cols() <= maxInlineCells {
		o.Data = g.ToDense()
	}
	return o
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
