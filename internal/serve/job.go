// Package serve is the multi-tenant job service: it owns a pool of reusable
// engine.Engines and runs many matrix programs concurrently with per-tenant
// admission control, a quota-aware priority queue, shared cross-job caches
// (plans and built inputs), and an HTTP JSON front end served by cmd/dmacserve.
//
// The flow of a job: Submit prices it with the planner's block memory model
// and either rejects it (typed Rejection with a retry-after hint — the queue
// is bounded, backpressure is always explicit) or enqueues it
// FIFO-within-priority. The dispatcher leases an engine slot when the job's
// tenant is under quota, runs the program via engine.RunCtx under a per-job
// context with deadline and cancellation, and publishes the result. Every
// transition is observable: per-job root spans parent the engine's stage
// spans, and the metrics registry carries queue depth, queue wait, admission
// rejections and per-tenant bytes/FLOPs.
package serve

import (
	"context"
	"fmt"
	"time"

	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// State is a job lifecycle state. Transitions:
//
//	queued -> running -> done | failed | canceled
//	queued -> canceled            (canceled or shed before dispatch)
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Priority levels for the admission queue: 0 is most urgent. Within a level
// the queue is FIFO.
const (
	PriorityHigh = 0
	PriorityLow  = 2
	numPriority  = PriorityLow + 1
)

// JobSpec describes a submitted job. A job is either a registered workload
// (Workload names a workload.Registry entry, Params parameterize it) or a
// programmatic job (Program + Inputs, in-process submitters only).
type JobSpec struct {
	// Tenant is the submitting tenant; required.
	Tenant string
	// Workload names a registry entry. Empty for programmatic jobs.
	Workload string
	// Params parameterize the workload build and are passed as scalar
	// parameters to every execution.
	Params workload.Params
	// Program and Inputs define a programmatic job when Workload is empty.
	Program    *expr.Program
	Inputs     map[string]*matrix.Grid
	Iterations int
	// Priority is clamped to [PriorityHigh, PriorityLow].
	Priority int
	// Deadline bounds the job's run time once dispatched; 0 means the
	// service default.
	Deadline time.Duration
	// Outputs and Scalars select what programmatic jobs return; registry
	// jobs inherit them from the builder.
	Outputs []string
	Scalars []string
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant"`
	Workload string  `json:"workload,omitempty"`
	State    State   `json:"state"`
	Priority int     `json:"priority"`
	Error    string  `json:"error,omitempty"`
	Canceled bool    `json:"canceled,omitempty"`
	Deadline bool    `json:"deadline_exceeded,omitempty"`
	Faulted  bool    `json:"worker_fault,omitempty"`
	QueueSec float64 `json:"queue_sec"`
	RunSec   float64 `json:"run_sec"`
	// EstBytes is the admission-control price of the job under the block
	// memory model.
	EstBytes int64 `json:"est_bytes"`
	// Iterations actually completed.
	Iterations int                `json:"iterations"`
	Scalars    map[string]float64 `json:"scalars,omitempty"`
	// Engine metrics accumulated over all iterations (zero until terminal).
	CommBytes int64   `json:"comm_bytes"`
	FLOPs     float64 `json:"flops"`
	Retries   int     `json:"retries"`
	// WireBytes is the traffic the engine's transport actually measured on
	// the wire — zero for the in-process data plane, nonzero when the service
	// runs over TCP workers.
	WireBytes int64 `json:"wire_bytes"`
}

// Result is a completed job's payload: the output grids by name plus the
// driver scalars.
type Result struct {
	Grids   map[string]*matrix.Grid
	Scalars map[string]float64
}

// job is the internal record. Fields after the immutable header are guarded
// by the service mutex; outputs/scalars/metrics are written once by the
// running goroutine before the terminal transition and only read afterwards.
type job struct {
	id       string
	spec     JobSpec
	built    *workload.BuiltJob
	estBytes int64
	priority int

	state       State
	err         error
	canceled    bool
	deadlined   bool
	faulted     bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
	iterations  int
	cancel      context.CancelFunc // non-nil while running
	cancelAsked bool
	done        chan struct{}

	result  *Result
	metrics engine.Metrics
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:       j.id,
		Tenant:   j.spec.Tenant,
		Workload: j.spec.Workload,
		State:    j.state,
		Priority: j.priority,
		Canceled: j.canceled,
		Deadline: j.deadlined,
		Faulted:  j.faulted,
		EstBytes: j.estBytes,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch {
	case j.state == StateQueued:
		st.QueueSec = time.Since(j.submitted).Seconds()
	case !j.started.IsZero():
		st.QueueSec = j.started.Sub(j.submitted).Seconds()
		if j.state == StateRunning {
			st.RunSec = time.Since(j.started).Seconds()
		} else {
			st.RunSec = j.finished.Sub(j.started).Seconds()
		}
	default: // canceled while queued
		st.QueueSec = j.finished.Sub(j.submitted).Seconds()
	}
	if j.state.Terminal() {
		st.Iterations = j.iterations
		st.CommBytes = j.metrics.CommBytes
		st.FLOPs = j.metrics.FLOPs
		st.Retries = j.metrics.Retries
		st.WireBytes = j.metrics.WireBytes
		if j.result != nil {
			st.Scalars = j.result.Scalars
		}
	}
	return st
}

// Rejection is the typed admission-control refusal: the service is shedding
// load (queue full, tenant over quota, or draining) and the submitter should
// retry after the hinted delay — or not at all when Retryable is false (the
// job can never fit its tenant's quota).
type Rejection struct {
	Reason     string
	RetryAfter time.Duration
	Retryable  bool
}

func (r *Rejection) Error() string {
	if !r.Retryable {
		return fmt.Sprintf("serve: rejected: %s", r.Reason)
	}
	return fmt.Sprintf("serve: rejected: %s (retry after %s)", r.Reason, r.RetryAfter)
}

// ErrUnknownJob is returned by Status/Result/Cancel for absent job IDs.
var ErrUnknownJob = fmt.Errorf("serve: unknown job")

// ErrNotFinished is returned by Result for jobs that have not reached a
// terminal state.
var ErrNotFinished = fmt.Errorf("serve: job not finished")
