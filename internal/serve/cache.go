package serve

import (
	"container/list"
	"fmt"
	"sync"

	"dmac/internal/workload"
)

// jobCache is a bounded-bytes LRU of built registry jobs keyed by
// (workload, block size, canonical params). Registry builds are deterministic
// pure functions of that key, and nothing mutates a BuiltJob after
// construction — Bind wraps each input grid in a fresh DistMatrix and
// materialization replaces grid pointers instead of rewriting blocks — so one
// cached build can be bound into any number of concurrent engines. Repeat
// tenants re-submitting the same parameterized workload skip both the
// generator and the per-grid partitioning cost.
type jobCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element
	lru      list.List // of jobCacheItem, front = most recent
	hits     int64
	misses   int64
}

type jobCacheItem struct {
	key   string
	job   *workload.BuiltJob
	bytes int64
}

// newJobCache bounds the cache by total input bytes (<= 0 means 64 MiB).
func newJobCache(maxBytes int64) *jobCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &jobCache{maxBytes: maxBytes, entries: make(map[string]*list.Element)}
}

// jobCacheKey canonicalizes a registry build request.
func jobCacheKey(name string, blockSize int, params workload.Params) string {
	return fmt.Sprintf("%s|%d|%s", name, blockSize, params.Key())
}

func (c *jobCache) get(key string) *workload.BuiltJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(jobCacheItem).job
}

func (c *jobCache) put(key string, j *workload.BuiltJob) {
	b := j.InputBytes()
	if b > c.maxBytes {
		return // larger than the whole cache: never admit
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.lru.PushFront(jobCacheItem{key: key, job: j, bytes: b})
	c.bytes += b
	for c.bytes > c.maxBytes {
		oldest := c.lru.Back()
		it := oldest.Value.(jobCacheItem)
		c.lru.Remove(oldest)
		delete(c.entries, it.key)
		c.bytes -= it.bytes
	}
}

func (c *jobCache) stats() (hits, misses int64, entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len(), c.bytes
}
