package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/workload"
)

func testOptions() Options {
	return Options{
		Planner:         engine.DMac,
		Cluster:         dist.Config{Workers: 4, LocalParallelism: 2},
		BlockSize:       8,
		Slots:           2,
		DefaultDeadline: time.Minute,
	}
}

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	s, err := NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Stop(ctx)
	})
	return s
}

// soloRun executes the same registry workload on a standalone engine — the
// differential oracle served results must match bit-for-bit.
func soloRun(t *testing.T, opts Options, name string, params workload.Params) (map[string]*matrix.Grid, map[string]float64) {
	t.Helper()
	built, err := workload.DefaultRegistry().Build(name, opts.BlockSize, params)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(opts.Planner, opts.Cluster, opts.BlockSize)
	for n, g := range built.Inputs {
		if err := e.Bind(n, g); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < built.Iterations; i++ {
		if _, err := e.Run(built.Program, params); err != nil {
			t.Fatal(err)
		}
	}
	grids := make(map[string]*matrix.Grid)
	for _, n := range built.Outputs {
		g, ok := e.Grid(n)
		if !ok {
			t.Fatalf("solo run produced no output %q", n)
		}
		grids[n] = g
	}
	scalars := make(map[string]float64)
	for _, n := range built.Scalars {
		if v, ok := e.Scalar(n); ok {
			scalars[n] = v
		}
	}
	return grids, scalars
}

// TestTwoTenantsIsolatedResults is the headline acceptance test: two tenants
// submit different jobs concurrently and each gets exactly the result a
// dedicated single-job engine would have produced.
func TestTwoTenantsIsolatedResults(t *testing.T) {
	opts := testOptions()
	s := newTestService(t, opts)

	jobs := []struct {
		tenant   string
		workload string
		params   workload.Params
	}{
		{"alice", "pagerank", workload.Params{"nodes": 64, "iters": 3, "seed": 11}},
		{"bob", "gram", workload.Params{"rows": 40, "cols": 24, "seed": 7}},
		{"alice", "blend", workload.Params{"n": 32, "k": 6, "seed": 5}},
		{"bob", "pagerank", workload.Params{"nodes": 48, "iters": 2, "seed": 3}},
	}
	ids := make([]string, len(jobs))
	for i, jb := range jobs {
		st, err := s.Submit(JobSpec{Tenant: jb.tenant, Workload: jb.workload, Params: jb.params})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i, id := range ids {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d (%s): state %s, err %q", i, jobs[i].workload, st.State, st.Error)
		}
		res, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		wantGrids, wantScalars := soloRun(t, opts, jobs[i].workload, jobs[i].params)
		for name, want := range wantGrids {
			got := res.Grids[name]
			if got == nil || !matrix.GridEqual(got, want, 0) {
				t.Errorf("job %d (%s): output %s diverged from single-job engine", i, jobs[i].workload, name)
			}
		}
		for name, want := range wantScalars {
			if got := res.Scalars[name]; got != want {
				t.Errorf("job %d: scalar %s = %v, want %v", i, name, got, want)
			}
		}
	}

	stats := s.Stats()
	if stats.Completed != int64(len(jobs)) {
		t.Errorf("stats.Completed = %d, want %d", stats.Completed, len(jobs))
	}
	if stats.QueueWaitCount != int64(len(jobs)) {
		t.Errorf("stats.QueueWaitCount = %d, want %d", stats.QueueWaitCount, len(jobs))
	}
	if stats.Tenants["alice"].Completed != 2 || stats.Tenants["bob"].Completed != 2 {
		t.Errorf("per-tenant completion counts wrong: %+v", stats.Tenants)
	}
}

// TestTenantQuotaRejection pins the isolation half of admission control: a
// tenant over its queue quota is rejected with a retryable Rejection while
// another tenant's submissions proceed untouched.
func TestTenantQuotaRejection(t *testing.T) {
	opts := testOptions()
	opts.Slots = 1
	opts.Quotas = map[string]TenantQuota{
		"greedy": {MaxConcurrent: 1, MaxQueued: 1},
	}
	s := newTestService(t, opts)

	params := workload.Params{"nodes": 256, "iters": 2000, "seed": 1}
	var ids []string
	var rejected *Rejection
	for i := 0; i < 5; i++ {
		st, err := s.Submit(JobSpec{Tenant: "greedy", Workload: "pagerank", Params: params, Deadline: 2 * time.Second})
		if err != nil {
			if !errors.As(err, &rejected) {
				t.Fatalf("submit %d: unexpected non-rejection error %v", i, err)
			}
			break
		}
		ids = append(ids, st.ID)
	}
	if rejected == nil {
		t.Fatal("greedy tenant was never rejected")
	}
	if !rejected.Retryable || rejected.RetryAfter <= 0 {
		t.Errorf("rejection should be retryable with a retry-after hint: %+v", rejected)
	}

	// The other tenant is unaffected and completes.
	st, err := s.Submit(JobSpec{Tenant: "modest", Workload: "gram", Params: workload.Params{"rows": 24, "cols": 16}})
	if err != nil {
		t.Fatalf("modest tenant rejected alongside greedy: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if fin, err := s.Wait(ctx, st.ID); err != nil || fin.State != StateDone {
		t.Fatalf("modest tenant job: %v / %+v", err, fin)
	}
	for _, id := range ids {
		if _, err := s.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Rejected == 0 {
		t.Error("stats.Rejected should count the quota rejection")
	}
}

// TestByteQuotaRejection: a job priced over the tenant's memory quota is
// rejected outright (not retryable — it can never fit).
func TestByteQuotaRejection(t *testing.T) {
	opts := testOptions()
	opts.Quotas = map[string]TenantQuota{"tiny": {MaxBytes: 1}}
	s := newTestService(t, opts)
	_, err := s.Submit(JobSpec{Tenant: "tiny", Workload: "gram"})
	var rej *Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("got %v, want Rejection", err)
	}
	if rej.Retryable {
		t.Error("over-byte-quota rejection must not be retryable")
	}
}

// TestQueueBackpressure: the global queue is bounded; overflow is an
// explicit 429-style rejection, never unbounded buffering.
func TestQueueBackpressure(t *testing.T) {
	opts := testOptions()
	opts.Slots = 1
	opts.QueueCapacity = 2
	opts.DefaultQuota = TenantQuota{MaxConcurrent: 1, MaxQueued: 100}
	s := newTestService(t, opts)

	params := workload.Params{"nodes": 128, "iters": 40, "seed": 2}
	sawReject := false
	for i := 0; i < 6; i++ {
		_, err := s.Submit(JobSpec{Tenant: "t", Workload: "pagerank", Params: params})
		var rej *Rejection
		if errors.As(err, &rej) {
			sawReject = true
			if !rej.Retryable {
				t.Errorf("queue-full rejection should be retryable")
			}
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawReject {
		t.Fatal("queue never pushed back")
	}
}

// TestCancelQueuedAndRunning covers both cancellation paths.
func TestCancelQueuedAndRunning(t *testing.T) {
	opts := testOptions()
	opts.Slots = 1
	s := newTestService(t, opts)

	slow := workload.Params{"nodes": 256, "iters": 200, "seed": 9}
	running, err := s.Submit(JobSpec{Tenant: "t", Workload: "pagerank", Params: slow})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Tenant: "t", Workload: "pagerank", Params: slow})
	if err != nil {
		t.Fatal(err)
	}

	// The second job is still queued (one slot, same tenant): cancel it.
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued cancel: state %s", st.State)
	}

	// Wait for the first to actually start, then cancel it mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err = s.Status(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning || st.State.Terminal() || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := s.Wait(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled {
		t.Fatalf("running cancel: state %s (err %q)", fin.State, fin.Error)
	}
	if s.Stats().Canceled != 2 {
		t.Errorf("stats.Canceled = %d, want 2", s.Stats().Canceled)
	}
}

// TestJobDeadline: a job's per-run deadline expires mid-flight and surfaces
// as a failed job marked deadline_exceeded.
func TestJobDeadline(t *testing.T) {
	s := newTestService(t, testOptions())
	st, err := s.Submit(JobSpec{
		Tenant:   "t",
		Workload: "pagerank",
		Params:   workload.Params{"nodes": 256, "iters": 200, "seed": 4},
		Deadline: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || !fin.Deadline {
		t.Fatalf("state %s deadline=%v, want failed with deadline_exceeded", fin.State, fin.Deadline)
	}
}

// TestStopDrains: a graceful stop finishes everything that was admitted and
// rejects new submissions with a draining rejection.
func TestStopDrains(t *testing.T) {
	s := newTestService(t, testOptions())
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := s.Submit(JobSpec{Tenant: "t", Workload: "blend", Params: workload.Params{"n": 32, "k": 4, "seed": float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	var stopErr error
	go func() {
		defer wg.Done()
		stopErr = s.Stop(ctx)
	}()
	// Admission closes promptly even while jobs drain.
	var rej *Rejection
	for i := 0; i < 1000; i++ {
		_, err := s.Submit(JobSpec{Tenant: "t", Workload: "gram"})
		if errors.As(err, &rej) || err != nil && err.Error() == "serve: service stopped" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if stopErr != nil {
		t.Fatalf("graceful stop reported forced work: %v", stopErr)
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s: state %s after drain, want done", id, st.State)
		}
	}
}

// TestStopForceCancels: when the drain deadline is too short, queued jobs are
// shed and running jobs canceled — and Stop says so instead of hanging.
func TestStopForceCancels(t *testing.T) {
	opts := testOptions()
	opts.Slots = 1
	opts.DefaultQuota = TenantQuota{MaxConcurrent: 1, MaxQueued: 100}
	s := newTestService(t, opts)
	slow := workload.Params{"nodes": 256, "iters": 500, "seed": 8}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(JobSpec{Tenant: "t", Workload: "pagerank", Params: slow})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Stop(ctx); err == nil {
		t.Fatal("forced stop should report shed/canceled jobs")
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Errorf("job %s still %s after forced stop", id, st.State)
		}
	}
}

// TestSharedCachesAcrossJobs: repeat submissions of the same parameterized
// workload hit both the built-input cache and the shared plan cache.
func TestSharedCachesAcrossJobs(t *testing.T) {
	s := newTestService(t, testOptions())
	params := workload.Params{"rows": 32, "cols": 24, "seed": 6}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, tenant := range []string{"a", "b", "a", "b"} {
		st, err := s.Submit(JobSpec{Tenant: tenant, Workload: "gram", Params: params})
		if err != nil {
			t.Fatal(err)
		}
		if fin, err := s.Wait(ctx, st.ID); err != nil || fin.State != StateDone {
			t.Fatalf("%v / %+v", err, fin)
		}
	}
	stats := s.Stats()
	if stats.JobCache.Hits == 0 {
		t.Error("built-input cache never hit across identical submissions")
	}
	if stats.PlanCache.Hits == 0 {
		t.Error("shared plan cache never hit across engines")
	}
	if stats.PlanCache.Misses > 2 {
		t.Errorf("plan regenerated %d times for one program shape", stats.PlanCache.Misses)
	}
}

// TestProgrammaticJob: the in-process API accepts a raw program + inputs.
func TestProgrammaticJob(t *testing.T) {
	s := newTestService(t, testOptions())
	built, err := workload.DefaultRegistry().Build("gram", 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(JobSpec{
		Tenant:  "t",
		Program: built.Program,
		Inputs:  built.Inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("state %s: %s", fin.State, fin.Error)
	}
	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Grids["G"] == nil {
		t.Error("programmatic job should default outputs to the program's assignments")
	}
	if _, ok := res.Scalars["gram_sum"]; !ok {
		t.Error("programmatic job should default scalars to the program's scalar outs")
	}
}

// TestJobRootSpans: every job emits a serve/job root span, the engine's run
// spans are parented under it, and the whole tree lands in the flight
// recorder under the job's ID.
func TestJobRootSpans(t *testing.T) {
	s := newTestService(t, testOptions())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := s.Submit(JobSpec{Tenant: "t", Workload: "gram"})
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := s.Wait(ctx, st.ID); err != nil || fin.State != StateDone {
		t.Fatalf("%v / %+v", err, fin)
	}
	spans, err := s.JobTrace(st.ID)
	if err != nil {
		t.Fatalf("JobTrace: %v", err)
	}
	var root *obs.Span
	for i := range spans {
		if spans[i].Cat == "serve" && spans[i].Name == "job" {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatal("no serve/job root span")
	}
	childRuns := 0
	for _, sp := range spans {
		if sp.Cat == "engine" && sp.Name == "run" && sp.Parent == root.ID {
			childRuns++
		}
	}
	if childRuns == 0 {
		t.Error("engine run spans are not parented under the job root span")
	}
	// The slot tracer was drained into the recorder: a second job must not
	// see the first job's spans.
	for _, tr := range s.Tracers() {
		if tr.Len() != 0 {
			t.Errorf("slot tracer retains %d spans after drain", tr.Len())
		}
	}
}
