package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dmac/internal/autoscale"
	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/rewrite"
	"dmac/internal/workload"
)

// Options configures a Service. Zero values pick serving-appropriate
// defaults.
type Options struct {
	// Planner, Cluster and BlockSize configure every engine slot.
	Planner   engine.Planner
	Cluster   dist.Config
	BlockSize int
	// Slots is the initial engine-pool size: the maximum number of
	// concurrently running jobs until a Resize (default 2). With Autoscale
	// set it is clamped into [Autoscale.Min, Autoscale.Max].
	Slots int
	// Autoscale, when non-nil, attaches the model-based elastic autoscaler:
	// a reconciliation loop that resizes the pool within the configured
	// bounds against the latency target. See internal/autoscale.
	Autoscale *autoscale.Config
	// QueueCapacity bounds the admission queue across all tenants
	// (default 16). Submissions beyond it are rejected, never buffered.
	QueueCapacity int
	// DefaultQuota applies to tenants absent from Quotas; its own zero
	// fields fall back to built-in defaults.
	DefaultQuota TenantQuota
	Quotas       map[string]TenantQuota
	// DefaultDeadline bounds a job's run time when its spec doesn't
	// (default 30s).
	DefaultDeadline time.Duration
	// Registry resolves workload names (default workload.DefaultRegistry).
	Registry *workload.Registry
	// Metrics receives service and engine metrics (default fresh registry).
	Metrics *obs.Registry
	// PlanCacheCap bounds the cross-engine shared plan cache (default 128).
	PlanCacheCap int
	// JobCacheBytes bounds the built-input cache (default 64 MiB).
	JobCacheBytes int64
	// CheckpointDir, when set, gives every engine slot a per-stage
	// checkpoint under CheckpointDir/slot-N. A forced shutdown then leaves
	// each interrupted job's newest snapshot flushed on disk.
	CheckpointDir string
	// DisableRewrite turns off the algebraic rewrite pass that every engine
	// slot otherwise runs before planning (escape hatch for A/B runs and
	// debugging suspect plans).
	DisableRewrite bool
	// Logger receives structured job-lifecycle and request logs (default: a
	// discarding logger, so embedded services and tests stay quiet).
	Logger *slog.Logger
	// SLO is the default per-tenant service-level objective; SLOs overrides
	// it for named tenants. Zero fields fall back to built-in defaults
	// (objective 0.99, latency 5s).
	SLO  SLOConfig
	SLOs map[string]SLOConfig
	// FlightRecorderJobs bounds the always-on trace ring: how many recent
	// jobs keep their full span tree queryable via JobTrace (default 256).
	FlightRecorderJobs int
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 8
	}
	if o.Slots <= 0 {
		o.Slots = 2
	}
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 16
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 30 * time.Second
	}
	if o.Registry == nil {
		o.Registry = workload.DefaultRegistry()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// engineSlot is one reusable engine plus its private tracer (a tracer's
// active scope is a single slot of state, so concurrent jobs must not share
// one). A draining slot is retiring from a shrink: it finishes its current
// job — never canceled mid-run — and is removed and closed at the terminal
// transition instead of returning to the free list.
type engineSlot struct {
	id       int
	e        *engine.Engine
	tracer   *obs.Tracer
	draining bool
}

// Service is the multi-tenant job service. See the package comment for the
// life of a job. All methods are safe for concurrent use.
type Service struct {
	opts     Options
	shared   *engine.PlanCache
	jobCache *jobCache
	start    time.Time
	logger   *slog.Logger
	slo      *sloTracker
	flight   *flightRecorder

	scaler *autoscale.Controller

	mu        sync.Mutex
	cond      *sync.Cond
	q         queue
	jobs      map[string]*job
	tenants   map[string]*tenantState
	freeSlots []*engineSlot
	slots     []*engineSlot // all live slots, draining included
	running   int
	nextID    int64
	draining  bool
	closed    bool

	// Dynamic-pool state. desiredSlots is the Resize target: the dispatcher
	// constructs slots lazily up to it when runnable work is queued.
	// drainingSlots counts the busy slots marked for retirement.
	desiredSlots  int
	drainingSlots int
	nextSlotID    int

	// Capacity-model calibration, maintained at every terminal transition:
	// runSecEWMA is the mean per-job run time, bytesPerSecEWMA the rate one
	// slot retires the planner's estimated bytes (linking the admission
	// price to wall time). queuedEstBytes is the model-priced backlog.
	runSecEWMA      float64
	bytesPerSecEWMA float64
	queuedEstBytes  int64

	wg             sync.WaitGroup
	dispatcherDone chan struct{}

	// metrics handles (registry-owned, concurrency-safe)
	gQueueDepth  *obs.Gauge
	gRunning     *obs.Gauge
	hQueueWait   *obs.Histogram
	hRunSeconds  *obs.Histogram
	cSubmitted   *obs.Counter
	cCompleted   *obs.Counter
	cFailed      *obs.Counter
	cCanceled    *obs.Counter
	cRejected    *obs.Counter
	rejectedByRC map[string]*obs.Counter
	vSlots       *obs.GaugeVec // state: total | free | draining | desired

	// labeled metric families (per-tenant exposition via /metrics)
	vSubmitted  *obs.CounterVec   // tenant, workload
	vFinished   *obs.CounterVec   // tenant, workload, state
	vRejected   *obs.CounterVec   // tenant, reason
	vQueueDepth *obs.GaugeVec     // tenant
	vRunning    *obs.GaugeVec     // tenant
	vQueueWait  *obs.HistogramVec // tenant
	vRunSeconds *obs.HistogramVec // tenant, workload
	vCommBytes  *obs.CounterVec   // tenant
	vFLOPs      *obs.CounterVec   // tenant
	vJobGFLOPS  *obs.HistogramVec // tenant
}

var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// NewService builds the engine pool and starts the dispatcher (and, with
// Options.Autoscale set, the autoscale controller).
func NewService(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	if opts.Autoscale != nil {
		cfg := *opts.Autoscale
		if cfg.Min <= 0 {
			cfg.Min = 1
		}
		if cfg.Max < cfg.Min {
			cfg.Max = cfg.Min
		}
		if opts.Slots < cfg.Min {
			opts.Slots = cfg.Min
		}
		if opts.Slots > cfg.Max {
			opts.Slots = cfg.Max
		}
		opts.Autoscale = &cfg
	}
	s := &Service{
		opts:           opts,
		shared:         engine.NewPlanCache(opts.PlanCacheCap),
		jobCache:       newJobCache(opts.JobCacheBytes),
		start:          time.Now(),
		logger:         opts.Logger,
		slo:            newSLOTracker(opts.SLO, opts.SLOs),
		flight:         newFlightRecorder(opts.FlightRecorderJobs),
		jobs:           make(map[string]*job),
		tenants:        make(map[string]*tenantState),
		dispatcherDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	m := opts.Metrics
	s.gQueueDepth = m.Gauge("serve.queue.depth")
	s.gRunning = m.Gauge("serve.jobs.running")
	s.hQueueWait = m.Histogram("serve.queue.wait.seconds", latencyBounds)
	s.hRunSeconds = m.Histogram("serve.job.run.seconds", latencyBounds)
	s.cSubmitted = m.Counter("serve.jobs.submitted")
	s.cCompleted = m.Counter("serve.jobs.completed")
	s.cFailed = m.Counter("serve.jobs.failed")
	s.cCanceled = m.Counter("serve.jobs.canceled")
	s.cRejected = m.Counter("serve.admit.rejected")
	s.rejectedByRC = map[string]*obs.Counter{
		"queue_full":   m.Counter("serve.admit.rejected.queue_full"),
		"tenant_quota": m.Counter("serve.admit.rejected.tenant_quota"),
		"draining":     m.Counter("serve.admit.rejected.draining"),
	}
	s.vSubmitted = m.CounterVec("serve.tenant.jobs.submitted", "tenant", "workload")
	s.vFinished = m.CounterVec("serve.tenant.jobs.finished", "tenant", "workload", "state")
	s.vRejected = m.CounterVec("serve.tenant.rejected", "tenant", "reason")
	s.vQueueDepth = m.GaugeVec("serve.tenant.queue.depth", "tenant")
	s.vRunning = m.GaugeVec("serve.tenant.jobs.running", "tenant")
	s.vQueueWait = m.HistogramVec("serve.tenant.queue.wait.seconds", latencyBounds, "tenant")
	s.vRunSeconds = m.HistogramVec("serve.tenant.job.run.seconds", latencyBounds, "tenant", "workload")
	s.vCommBytes = m.CounterVec("serve.tenant.comm.bytes", "tenant")
	s.vFLOPs = m.CounterVec("serve.tenant.flops", "tenant")
	s.vJobGFLOPS = m.HistogramVec("serve.tenant.job.gflops", obs.GFLOPSBuckets, "tenant")
	s.vSlots = m.GaugeVec("serve.slots", "state")

	s.desiredSlots = opts.Slots
	for i := 0; i < opts.Slots; i++ {
		slot, err := s.newSlot()
		if err != nil {
			return nil, err
		}
		s.slots = append(s.slots, slot)
		s.freeSlots = append(s.freeSlots, slot)
	}
	s.slotGaugesLocked()
	if opts.Autoscale != nil {
		s.scaler = autoscale.New(*opts.Autoscale, s, m)
		s.scaler.Start()
	}
	go s.dispatcher()
	return s, nil
}

// newSlot constructs one engine slot with a fresh monotonic ID (so a slot
// grown after a shrink never inherits a retired slot's checkpoint directory).
// Called under the service mutex after construction; during NewService the
// service is not yet shared.
func (s *Service) newSlot() (*engineSlot, error) {
	id := s.nextSlotID
	s.nextSlotID++
	e := engine.New(s.opts.Planner, s.opts.Cluster, s.opts.BlockSize)
	tr := obs.NewTracer()
	e.SetObserver(tr, s.opts.Metrics)
	e.SetSharedPlanCache(s.shared)
	if !s.opts.DisableRewrite {
		e.SetRewriter(rewrite.New())
	}
	if s.opts.CheckpointDir != "" {
		dir := filepath.Join(s.opts.CheckpointDir, fmt.Sprintf("slot-%d", id))
		if err := e.SetCheckpoint(dir, engine.CheckpointPolicy{Interval: 1}); err != nil {
			e.Close()
			return nil, fmt.Errorf("serve: slot %d checkpoint: %w", id, err)
		}
	}
	return &engineSlot{id: id, e: e, tracer: tr}, nil
}

// activeSlotsLocked is the pool capacity ignoring slots already draining
// away.
func (s *Service) activeSlotsLocked() int { return len(s.slots) - s.drainingSlots }

// slotGaugesLocked refreshes the serve.slots{state} gauge family after any
// pool-shape change.
func (s *Service) slotGaugesLocked() {
	s.vSlots.With("total").Set(float64(len(s.slots)))
	s.vSlots.With("free").Set(float64(len(s.freeSlots)))
	s.vSlots.With("draining").Set(float64(s.drainingSlots))
	s.vSlots.With("desired").Set(float64(s.desiredSlots))
}

// Registry returns the service's workload registry.
func (s *Service) Registry() *workload.Registry { return s.opts.Registry }

// Tracers returns the per-slot tracers (for trace export and tests).
func (s *Service) Tracers() []*obs.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	trs := make([]*obs.Tracer, len(s.slots))
	for i, sl := range s.slots {
		trs[i] = sl.tracer
	}
	return trs
}

func (s *Service) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		q, has := s.opts.Quotas[name]
		if !has {
			q = s.opts.DefaultQuota
		}
		ts = &tenantState{quota: q.withDefaults(s.opts.DefaultQuota)}
		s.tenants[name] = ts
	}
	return ts
}

func (s *Service) rejectLocked(tenant string, ts *tenantState, reason string, r *Rejection) error {
	s.cRejected.Inc()
	if c, ok := s.rejectedByRC[reason]; ok {
		c.Inc()
	}
	s.vRejected.With(tenant, reason).Inc()
	if ts != nil {
		ts.rejected++
	}
	s.logger.Warn("job rejected",
		"tenant", tenant, "reason", reason, "detail", r.Reason,
		"retryable", r.Retryable, "retry_after_sec", r.RetryAfter.Seconds())
	return r
}

// tenantGaugesLocked refreshes the tenant's live queue/running gauges.
func (s *Service) tenantGaugesLocked(tenant string, ts *tenantState) {
	s.vQueueDepth.With(tenant).Set(float64(ts.queued))
	s.vRunning.With(tenant).Set(float64(ts.running))
}

// Submit prices the job, applies admission control, and enqueues it. The
// returned status snapshot carries the assigned job ID. Admission refusals
// are *Rejection errors; anything else is a validation failure.
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	if spec.Tenant == "" {
		return JobStatus{}, fmt.Errorf("serve: job has no tenant")
	}
	if spec.Priority < PriorityHigh {
		spec.Priority = PriorityHigh
	}
	if spec.Priority > PriorityLow {
		spec.Priority = PriorityLow
	}
	built, err := s.buildSpec(spec)
	if err != nil {
		return JobStatus{}, err
	}
	est := built.EstimatedBytes(s.opts.BlockSize)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, fmt.Errorf("serve: service stopped")
	}
	ts := s.tenant(spec.Tenant)
	if s.draining {
		return JobStatus{}, s.rejectLocked(spec.Tenant, ts, "draining",
			&Rejection{Reason: "service draining", Retryable: false})
	}
	if est > ts.quota.MaxBytes {
		return JobStatus{}, s.rejectLocked(spec.Tenant, ts, "tenant_quota", &Rejection{
			Reason: fmt.Sprintf("job needs %d estimated bytes, tenant quota is %d", est, ts.quota.MaxBytes),
		})
	}
	if ts.queued >= ts.quota.MaxQueued {
		return JobStatus{}, s.rejectLocked(spec.Tenant, ts, "tenant_quota", &Rejection{
			Reason:     fmt.Sprintf("tenant has %d jobs queued (quota %d)", ts.queued, ts.quota.MaxQueued),
			RetryAfter: s.retryAfterLocked(),
			Retryable:  true,
		})
	}
	if s.q.size >= s.opts.QueueCapacity {
		return JobStatus{}, s.rejectLocked(spec.Tenant, ts, "queue_full", &Rejection{
			Reason:     fmt.Sprintf("admission queue full (%d)", s.q.size),
			RetryAfter: s.retryAfterLocked(),
			Retryable:  true,
		})
	}

	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		spec:      spec,
		built:     built,
		estBytes:  est,
		priority:  spec.Priority,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.q.push(j)
	s.queuedEstBytes += j.estBytes
	ts.queued++
	ts.submitted++
	s.cSubmitted.Inc()
	s.vSubmitted.With(spec.Tenant, spec.Workload).Inc()
	s.gQueueDepth.Set(float64(s.q.size))
	s.tenantGaugesLocked(spec.Tenant, ts)
	s.logger.Info("job submitted",
		"job", j.id, "tenant", spec.Tenant, "workload", spec.Workload,
		"priority", j.priority, "est_bytes", est, "queue_depth", s.q.size)
	s.cond.Broadcast()
	return j.status(), nil
}

// buildSpec materializes the job's inputs and program: registry jobs resolve
// through the built-input cache, programmatic jobs are validated and wrapped.
func (s *Service) buildSpec(spec JobSpec) (*workload.BuiltJob, error) {
	if spec.Workload != "" {
		key := jobCacheKey(spec.Workload, s.opts.BlockSize, spec.Params)
		if b := s.jobCache.get(key); b != nil {
			return b, nil
		}
		b, err := s.opts.Registry.Build(spec.Workload, s.opts.BlockSize, spec.Params)
		if err != nil {
			return nil, err
		}
		s.jobCache.put(key, b)
		return b, nil
	}
	if spec.Program == nil {
		return nil, fmt.Errorf("serve: job names no workload and carries no program")
	}
	if err := spec.Program.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid program: %w", err)
	}
	b := &workload.BuiltJob{
		Inputs:     spec.Inputs,
		Program:    spec.Program,
		Iterations: spec.Iterations,
		Params:     spec.Params,
		Outputs:    spec.Outputs,
		Scalars:    spec.Scalars,
	}
	if b.Iterations < 1 {
		b.Iterations = 1
	}
	if len(b.Outputs) == 0 {
		for _, a := range spec.Program.Assignments() {
			b.Outputs = append(b.Outputs, a.Name)
		}
	}
	if len(b.Scalars) == 0 {
		for _, so := range spec.Program.ScalarOuts() {
			b.Scalars = append(b.Scalars, so.Name)
		}
	}
	return b, nil
}

// dispatchableLocked reports whether capacity (a free slot, or headroom to
// lazily construct one under the desired size) and a runnable queued job
// exist right now.
func (s *Service) dispatchableLocked() bool {
	if s.q.size == 0 {
		return false
	}
	if len(s.freeSlots) == 0 && s.activeSlotsLocked() >= s.desiredSlots {
		return false
	}
	for p := range s.q.levels {
		for _, j := range s.q.levels[p] {
			if s.tenants[j.spec.Tenant].canRun(j.estBytes) {
				return true
			}
		}
	}
	return false
}

// leaseSlotLocked returns a slot for the next runnable job: a free one, or —
// when the pool is below its desired size — a lazily constructed one. This
// is the grow half of Resize: declaring a larger pool is O(1) and engines
// only materialize when runnable work actually needs them.
func (s *Service) leaseSlotLocked() *engineSlot {
	if n := len(s.freeSlots); n > 0 {
		slot := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return slot
	}
	slot, err := s.newSlot()
	if err != nil {
		// Construction failed (e.g. checkpoint directory): stop growing at
		// the size that worked rather than retrying every dispatch.
		s.logger.Error("slot construction failed, pinning pool size",
			"err", err.Error(), "slots", len(s.slots))
		s.desiredSlots = s.activeSlotsLocked()
		s.slotGaugesLocked()
		return nil
	}
	s.slots = append(s.slots, slot)
	s.logger.Info("slot grown", "slot", slot.id, "slots_total", len(s.slots), "slots_desired", s.desiredSlots)
	return slot
}

// dispatcher is the single scheduling goroutine: it leases slots to runnable
// jobs in priority-then-FIFO order, skipping tenants at their quota.
func (s *Service) dispatcher() {
	defer close(s.dispatcherDone)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && !s.dispatchableLocked() {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		slot := s.leaseSlotLocked()
		if slot == nil {
			continue
		}
		j := s.q.pop(func(j *job) bool {
			return s.tenants[j.spec.Tenant].canRun(j.estBytes)
		})
		ts := s.tenants[j.spec.Tenant]
		ts.queued--
		ts.running++
		ts.runningBytes += j.estBytes
		s.queuedEstBytes -= j.estBytes
		j.state = StateRunning
		j.started = time.Now()
		s.running++
		wait := j.started.Sub(j.submitted).Seconds()
		s.hQueueWait.Observe(wait)
		s.vQueueWait.With(j.spec.Tenant).Observe(wait)
		s.gQueueDepth.Set(float64(s.q.size))
		s.gRunning.Set(float64(s.running))
		s.slotGaugesLocked()
		s.tenantGaugesLocked(j.spec.Tenant, ts)
		s.logger.Info("job started",
			"job", j.id, "tenant", j.spec.Tenant, "workload", j.spec.Workload,
			"slot", slot.id, "queue_sec", wait)
		s.wg.Add(1)
		go s.runJob(j, slot)
	}
}

// runJob executes one job on a leased slot: reset the session, bind the
// built inputs, run the program for its iterations under the job context,
// and publish the terminal state. The job's root span parents every engine
// stage span emitted on the slot's tracer.
func (s *Service) runJob(j *job, slot *engineSlot) {
	defer s.wg.Done()
	deadline := j.spec.Deadline
	if deadline <= 0 {
		deadline = s.opts.DefaultDeadline
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	s.mu.Lock()
	j.cancel = cancel
	asked := j.cancelAsked
	s.mu.Unlock()
	if asked {
		cancel()
	}

	e := slot.e
	e.Reset()
	var runErr error
	for name, g := range j.built.Inputs {
		if err := e.Bind(name, g); err != nil {
			runErr = fmt.Errorf("serve: bind %s: %w", name, err)
			break
		}
	}

	root := slot.tracer.Start("serve", "job", 0,
		obs.String("job", j.id),
		obs.String("tenant", j.spec.Tenant),
		obs.String("workload", j.spec.Workload),
		obs.Int64("est_bytes", j.estBytes))
	prev := slot.tracer.SetScope(root)
	var total engine.Metrics
	iters := 0
	params := map[string]float64(j.spec.Params)
	for i := 0; runErr == nil && i < j.built.Iterations; i++ {
		m, err := e.RunCtx(ctx, j.built.Program, params)
		if err != nil {
			runErr = err
			break
		}
		total.Add(m)
		iters++
	}
	slot.tracer.SetScope(prev)

	state := StateDone
	var res *Result
	if runErr == nil {
		res = &Result{Grids: make(map[string]*matrix.Grid), Scalars: make(map[string]float64)}
		for _, name := range j.built.Outputs {
			g, ok := e.Grid(name)
			if !ok {
				runErr = fmt.Errorf("serve: job produced no output %q", name)
				break
			}
			res.Grids[name] = g
		}
		for _, name := range j.built.Scalars {
			if v, ok := e.Scalar(name); ok {
				res.Scalars[name] = v
			}
		}
	}
	if runErr != nil {
		res = nil
		state = StateFailed
		if errors.Is(runErr, context.Canceled) {
			state = StateCanceled
		}
	}
	slot.tracer.End(root, obs.String("state", string(state)), obs.Int64("iterations", int64(iters)))

	// Drain the slot tracer into the flight recorder: the slot ran only this
	// job since the last drain, so these spans are exactly its tree. Draining
	// per job also keeps a long-lived slot's tracer memory bounded.
	s.flight.record(j.id, slot.tracer.Spans())
	slot.tracer.Reset()

	s.finishJob(j, slot, state, runErr, res, total, iters)
}

// finishJob publishes the terminal state, returns the slot to the pool, and
// settles the tenant's accounting and the service metrics.
func (s *Service) finishJob(j *job, slot *engineSlot, state State, runErr error, res *Result, total engine.Metrics, iters int) {
	s.mu.Lock()
	ts := s.tenants[j.spec.Tenant]
	ts.running--
	ts.runningBytes -= j.estBytes
	ts.completed++
	j.state = state
	j.err = runErr
	j.result = res
	j.metrics = total
	j.iterations = iters
	j.finished = time.Now()
	switch state {
	case StateDone:
		s.cCompleted.Inc()
	case StateCanceled:
		j.canceled = true
		s.cCanceled.Inc()
	default:
		if errors.Is(runErr, context.DeadlineExceeded) {
			j.deadlined = true
		}
		var wf *dist.WorkerFailure
		if errors.As(runErr, &wf) {
			j.faulted = true
		}
		s.cFailed.Inc()
	}
	s.running--
	var toClose *engineSlot
	if slot.draining {
		// The drain protocol's last step: the slot finished (or failed) its
		// job untouched by the shrink and only now leaves the pool.
		s.drainingSlots--
		s.removeSlotLocked(slot)
		toClose = slot
		s.logger.Info("slot retired after drain", "slot", slot.id, "slots_total", len(s.slots))
	} else {
		s.freeSlots = append(s.freeSlots, slot)
	}
	s.gRunning.Set(float64(s.running))
	s.slotGaugesLocked()
	runSec := j.finished.Sub(j.started).Seconds()
	// Calibrate the capacity model: the observed service time and the rate
	// this job retired its admission price (estimated bytes per second).
	// New evidence at 0.3 weight smooths single-job noise while tracking a
	// workload-mix shift within a handful of completions.
	if runSec > 0 {
		if s.runSecEWMA == 0 {
			s.runSecEWMA = runSec
		} else {
			s.runSecEWMA = 0.3*runSec + 0.7*s.runSecEWMA
		}
		if bps := float64(j.estBytes) / runSec; bps > 0 {
			if s.bytesPerSecEWMA == 0 {
				s.bytesPerSecEWMA = bps
			} else {
				s.bytesPerSecEWMA = 0.3*bps + 0.7*s.bytesPerSecEWMA
			}
		}
	}
	s.hRunSeconds.Observe(runSec)
	s.vFinished.With(j.spec.Tenant, j.spec.Workload, string(state)).Inc()
	s.vRunSeconds.With(j.spec.Tenant, j.spec.Workload).Observe(runSec)
	s.vCommBytes.With(j.spec.Tenant).Add(total.CommBytes)
	s.vFLOPs.With(j.spec.Tenant).Add(int64(total.FLOPs))
	if runSec > 0 && total.FLOPs > 0 {
		s.vJobGFLOPS.With(j.spec.Tenant).Observe(total.FLOPs / runSec / 1e9)
	}
	s.tenantGaugesLocked(j.spec.Tenant, ts)
	latency := j.finished.Sub(j.submitted).Seconds()
	s.cond.Broadcast()
	s.mu.Unlock()
	if toClose != nil {
		toClose.e.Close()
	}
	// Canceled jobs are client decisions, not service failures; only done and
	// failed jobs consume SLO budget.
	if state != StateCanceled {
		s.slo.record(j.spec.Tenant, latency, state == StateFailed)
	}
	logAttrs := []any{
		"job", j.id, "tenant", j.spec.Tenant, "workload", j.spec.Workload,
		"state", string(state), "run_sec", runSec, "latency_sec", latency,
		"iterations", iters, "comm_bytes", total.CommBytes, "flops", total.FLOPs,
	}
	if runErr != nil {
		logAttrs = append(logAttrs, "error", runErr.Error())
		s.logger.Warn("job finished", logAttrs...)
	} else {
		s.logger.Info("job finished", logAttrs...)
	}
	close(j.done)
}

// removeSlotLocked deletes a slot from the live pool (it must not be on the
// free list). The caller closes the engine outside the service mutex.
func (s *Service) removeSlotLocked(slot *engineSlot) {
	for i, sl := range s.slots {
		if sl == slot {
			s.slots = append(s.slots[:i], s.slots[i+1:]...)
			return
		}
	}
}

// Resize sets the engine-pool size to n. Growing is lazy: the desired size
// rises immediately and the dispatcher constructs engines only when runnable
// work needs them (a pending grow also shrinks the Retry-After hint quota
// rejections advertise). Shrinking is graceful: free slots close immediately
// and busy slots are marked draining — each finishes (or checkpoint-flushes)
// its current job, is never canceled by the resize, and leaves the pool only
// at its terminal transition. A later grow reclaims draining slots before
// constructing new ones. Resize is safe to call concurrently with Submit,
// Cancel and Stop; resizing a stopped or stopping service is an error.
func (s *Service) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("serve: resize to %d slots (minimum 1)", n)
	}
	var toClose []*engineSlot
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return fmt.Errorf("serve: resize on a stopping service")
	}
	from := s.activeSlotsLocked()
	s.desiredSlots = n
	if n >= from {
		// Grow: reclaim draining slots first — their engines are warm and
		// possibly mid-job; undraining is free — then leave the rest to
		// lazy construction.
		for _, sl := range s.slots {
			if from >= n {
				break
			}
			if sl.draining {
				sl.draining = false
				s.drainingSlots--
				from++
			}
		}
		s.cond.Broadcast()
	} else {
		excess := from - n
		// Free slots retire immediately: nothing is running on them.
		for excess > 0 && len(s.freeSlots) > 0 {
			sl := s.freeSlots[len(s.freeSlots)-1]
			s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
			s.removeSlotLocked(sl)
			toClose = append(toClose, sl)
			excess--
		}
		// Any remaining excess is busy (the free list is empty): mark slots
		// draining, newest first. They finish their jobs untouched.
		for i := len(s.slots) - 1; i >= 0 && excess > 0; i-- {
			if sl := s.slots[i]; !sl.draining {
				sl.draining = true
				s.drainingSlots++
				excess--
			}
		}
	}
	s.slotGaugesLocked()
	s.logger.Info("pool resized", "desired", n,
		"slots_total", len(s.slots), "slots_free", len(s.freeSlots), "slots_draining", s.drainingSlots)
	s.mu.Unlock()
	for _, sl := range toClose {
		sl.e.Close()
	}
	return nil
}

// Observe implements autoscale.Pool: one snapshot of the signals the
// capacity model consumes. (Quantiles and burn rates come from the
// concurrency-safe metric handles, not the service mutex.)
func (s *Service) Observe() autoscale.Signals {
	p99 := s.hQueueWait.Quantile(0.99)
	burn := s.slo.maxFastBurn()
	submitted := s.cSubmitted.Value()
	s.mu.Lock()
	defer s.mu.Unlock()
	return autoscale.Signals{
		SlotsTotal:       len(s.slots),
		SlotsFree:        len(s.freeSlots),
		SlotsDraining:    s.drainingSlots,
		QueueDepth:       s.q.size,
		Running:          s.running,
		Submitted:        submitted,
		QueueWaitP99Sec:  p99,
		MeanRunSec:       s.runSecEWMA,
		QueuedEstBytes:   s.queuedEstBytes,
		ModelBytesPerSec: s.bytesPerSecEWMA,
		FastBurnRate:     burn,
	}
}

// AutoscaleStatus returns the attached controller's state, or nil when the
// service runs a fixed pool.
func (s *Service) AutoscaleStatus() *autoscale.Status {
	if s.scaler == nil {
		return nil
	}
	st := s.scaler.Status()
	return &st
}

// AutoscaleDecisions returns the controller's recorded grow/shrink trace
// (nil without autoscaling).
func (s *Service) AutoscaleDecisions() []autoscale.Decision {
	if s.scaler == nil {
		return nil
	}
	return s.scaler.Decisions()
}

// retryAfterLocked is the advertised backoff on a retryable rejection. The
// static estimate grows with the backlog; but when a scale-up is already
// pending (the desired pool exceeds the live one), capacity is about to
// arrive and quoting the static figure would hold clients off exactly when
// the grown pool wants their retries — so the hint shrinks instead.
func (s *Service) retryAfterLocked() time.Duration {
	d := retryAfter(s.q.size)
	if s.desiredSlots > len(s.slots) {
		d /= 4
		if d < 50*time.Millisecond {
			d = 50 * time.Millisecond
		}
	}
	return d
}

// Status returns a snapshot of the job.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Result returns a finished job's output grids and scalars.
func (s *Service) Result(id string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if !j.state.Terminal() {
		return nil, ErrNotFinished
	}
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its final status.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return s.Status(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Cancel cancels a job: dequeued immediately if still waiting, or its run
// context is canceled if running. Canceling a terminal job is a no-op.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		s.q.remove(j)
		s.queuedEstBytes -= j.estBytes
		ts := s.tenants[j.spec.Tenant]
		ts.queued--
		ts.completed++
		j.state = StateCanceled
		j.canceled = true
		j.err = context.Canceled
		j.finished = time.Now()
		s.cCanceled.Inc()
		s.vFinished.With(j.spec.Tenant, j.spec.Workload, string(StateCanceled)).Inc()
		s.gQueueDepth.Set(float64(s.q.size))
		s.tenantGaugesLocked(j.spec.Tenant, ts)
		s.logger.Info("job canceled while queued", "job", j.id, "tenant", j.spec.Tenant)
		st := j.status()
		s.mu.Unlock()
		close(j.done)
		return st, nil
	case StateRunning:
		j.cancelAsked = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	st := j.status()
	s.mu.Unlock()
	return st, nil
}

// Stop drains the service: admission closes immediately, queued and running
// jobs are given until ctx's deadline to finish. Past the deadline the queue
// is shed and running jobs are canceled — engines configured with a
// checkpoint directory have already flushed a per-stage snapshot of whatever
// they were computing, so a forced stop loses at most the stages after the
// newest checkpoint. Stop returns nil on a clean drain and an error naming
// the shed/canceled jobs otherwise.
func (s *Service) Stop(ctx context.Context) error {
	// Halt the autoscaler before taking the service mutex: its tick may be
	// inside Observe/Resize waiting on that same mutex, and once we drain
	// there is nothing left to scale.
	if s.scaler != nil {
		s.scaler.Stop()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.dispatcherDone
		return nil
	}
	s.draining = true
	s.cond.Broadcast()
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-watchDone:
		}
	}()
	for (s.q.size > 0 || s.running > 0) && ctx.Err() == nil {
		s.cond.Wait()
	}
	var shed, canceled int
	var doneCh []chan struct{}
	if s.q.size > 0 || s.running > 0 {
		for _, j := range s.q.drain() {
			s.queuedEstBytes -= j.estBytes
			ts := s.tenants[j.spec.Tenant]
			ts.queued--
			ts.completed++
			j.state = StateCanceled
			j.canceled = true
			j.err = fmt.Errorf("serve: shed at shutdown: %w", context.Canceled)
			j.finished = time.Now()
			s.cCanceled.Inc()
			s.vFinished.With(j.spec.Tenant, j.spec.Workload, string(StateCanceled)).Inc()
			s.tenantGaugesLocked(j.spec.Tenant, ts)
			s.logger.Warn("job shed at shutdown", "job", j.id, "tenant", j.spec.Tenant)
			doneCh = append(doneCh, j.done)
			shed++
		}
		s.gQueueDepth.Set(0)
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancelAsked = true
				if j.cancel != nil {
					j.cancel()
				}
				canceled++
			}
		}
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	close(watchDone)
	for _, ch := range doneCh {
		close(ch)
	}
	s.wg.Wait()
	<-s.dispatcherDone
	for _, slot := range s.slots {
		slot.e.Close()
	}
	if shed > 0 || canceled > 0 {
		return fmt.Errorf("serve: drain deadline exceeded: shed %d queued, canceled %d running", shed, canceled)
	}
	return nil
}

// Draining reports whether the service has stopped admitting jobs.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Metrics returns the service's metrics registry (the /metrics exposition
// source).
func (s *Service) Metrics() *obs.Registry { return s.opts.Metrics }

// SLO returns the current per-tenant rolling SLO windows and burn rates (the
// /v1/slo payload).
func (s *Service) SLO() SLOSnapshot { return s.slo.snapshot() }

// ListJobs returns status snapshots of known jobs, filtered by tenant and/or
// state when non-empty, ordered by job ID (which is submission order).
func (s *Service) ListJobs(tenant string, state State) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant != "" && j.spec.Tenant != tenant {
			continue
		}
		if state != "" && j.state != state {
			continue
		}
		out = append(out, j.status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// ErrNoTrace is returned by JobTrace when a job finished but its spans have
// aged out of the flight recorder's ring.
var ErrNoTrace = fmt.Errorf("serve: job trace no longer recorded")

// JobTrace returns the recorded span tree of a completed job from the
// always-on flight recorder. Unknown IDs return ErrUnknownJob, jobs that
// have not finished return ErrNotFinished, and evicted traces return
// ErrNoTrace.
func (s *Service) JobTrace(id string) ([]obs.Span, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var terminal bool
	if ok {
		terminal = j.state.Terminal()
	}
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	if spans, found := s.flight.get(id); found {
		return spans, nil
	}
	if !terminal {
		return nil, ErrNotFinished
	}
	return nil, ErrNoTrace
}

// TracedJobIDs returns the job IDs currently held by the flight recorder,
// oldest first.
func (s *Service) TracedJobIDs() []string { return s.flight.ids() }
