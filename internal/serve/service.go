package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/rewrite"
	"dmac/internal/workload"
)

// Options configures a Service. Zero values pick serving-appropriate
// defaults.
type Options struct {
	// Planner, Cluster and BlockSize configure every engine slot.
	Planner   engine.Planner
	Cluster   dist.Config
	BlockSize int
	// Slots is the engine-pool size: the maximum number of concurrently
	// running jobs (default 2).
	Slots int
	// QueueCapacity bounds the admission queue across all tenants
	// (default 16). Submissions beyond it are rejected, never buffered.
	QueueCapacity int
	// DefaultQuota applies to tenants absent from Quotas; its own zero
	// fields fall back to built-in defaults.
	DefaultQuota TenantQuota
	Quotas       map[string]TenantQuota
	// DefaultDeadline bounds a job's run time when its spec doesn't
	// (default 30s).
	DefaultDeadline time.Duration
	// Registry resolves workload names (default workload.DefaultRegistry).
	Registry *workload.Registry
	// Metrics receives service and engine metrics (default fresh registry).
	Metrics *obs.Registry
	// PlanCacheCap bounds the cross-engine shared plan cache (default 128).
	PlanCacheCap int
	// JobCacheBytes bounds the built-input cache (default 64 MiB).
	JobCacheBytes int64
	// CheckpointDir, when set, gives every engine slot a per-stage
	// checkpoint under CheckpointDir/slot-N. A forced shutdown then leaves
	// each interrupted job's newest snapshot flushed on disk.
	CheckpointDir string
	// DisableRewrite turns off the algebraic rewrite pass that every engine
	// slot otherwise runs before planning (escape hatch for A/B runs and
	// debugging suspect plans).
	DisableRewrite bool
	// Logger receives structured job-lifecycle and request logs (default: a
	// discarding logger, so embedded services and tests stay quiet).
	Logger *slog.Logger
	// SLO is the default per-tenant service-level objective; SLOs overrides
	// it for named tenants. Zero fields fall back to built-in defaults
	// (objective 0.99, latency 5s).
	SLO  SLOConfig
	SLOs map[string]SLOConfig
	// FlightRecorderJobs bounds the always-on trace ring: how many recent
	// jobs keep their full span tree queryable via JobTrace (default 256).
	FlightRecorderJobs int
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 8
	}
	if o.Slots <= 0 {
		o.Slots = 2
	}
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 16
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 30 * time.Second
	}
	if o.Registry == nil {
		o.Registry = workload.DefaultRegistry()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// engineSlot is one reusable engine plus its private tracer (a tracer's
// active scope is a single slot of state, so concurrent jobs must not share
// one).
type engineSlot struct {
	id     int
	e      *engine.Engine
	tracer *obs.Tracer
}

// Service is the multi-tenant job service. See the package comment for the
// life of a job. All methods are safe for concurrent use.
type Service struct {
	opts     Options
	shared   *engine.PlanCache
	jobCache *jobCache
	start    time.Time
	logger   *slog.Logger
	slo      *sloTracker
	flight   *flightRecorder

	mu        sync.Mutex
	cond      *sync.Cond
	q         queue
	jobs      map[string]*job
	tenants   map[string]*tenantState
	freeSlots []*engineSlot
	slots     []*engineSlot
	running   int
	nextID    int64
	draining  bool
	closed    bool

	wg             sync.WaitGroup
	dispatcherDone chan struct{}

	// metrics handles (registry-owned, concurrency-safe)
	gQueueDepth  *obs.Gauge
	gRunning     *obs.Gauge
	hQueueWait   *obs.Histogram
	hRunSeconds  *obs.Histogram
	cSubmitted   *obs.Counter
	cCompleted   *obs.Counter
	cFailed      *obs.Counter
	cCanceled    *obs.Counter
	cRejected    *obs.Counter
	rejectedByRC map[string]*obs.Counter

	// labeled metric families (per-tenant exposition via /metrics)
	vSubmitted  *obs.CounterVec   // tenant, workload
	vFinished   *obs.CounterVec   // tenant, workload, state
	vRejected   *obs.CounterVec   // tenant, reason
	vQueueDepth *obs.GaugeVec     // tenant
	vRunning    *obs.GaugeVec     // tenant
	vQueueWait  *obs.HistogramVec // tenant
	vRunSeconds *obs.HistogramVec // tenant, workload
	vCommBytes  *obs.CounterVec   // tenant
	vFLOPs      *obs.CounterVec   // tenant
	vJobGFLOPS  *obs.HistogramVec // tenant
}

var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// NewService builds the engine pool and starts the dispatcher.
func NewService(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	s := &Service{
		opts:           opts,
		shared:         engine.NewPlanCache(opts.PlanCacheCap),
		jobCache:       newJobCache(opts.JobCacheBytes),
		start:          time.Now(),
		logger:         opts.Logger,
		slo:            newSLOTracker(opts.SLO, opts.SLOs),
		flight:         newFlightRecorder(opts.FlightRecorderJobs),
		jobs:           make(map[string]*job),
		tenants:        make(map[string]*tenantState),
		dispatcherDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	m := opts.Metrics
	s.gQueueDepth = m.Gauge("serve.queue.depth")
	s.gRunning = m.Gauge("serve.jobs.running")
	s.hQueueWait = m.Histogram("serve.queue.wait.seconds", latencyBounds)
	s.hRunSeconds = m.Histogram("serve.job.run.seconds", latencyBounds)
	s.cSubmitted = m.Counter("serve.jobs.submitted")
	s.cCompleted = m.Counter("serve.jobs.completed")
	s.cFailed = m.Counter("serve.jobs.failed")
	s.cCanceled = m.Counter("serve.jobs.canceled")
	s.cRejected = m.Counter("serve.admit.rejected")
	s.rejectedByRC = map[string]*obs.Counter{
		"queue_full":   m.Counter("serve.admit.rejected.queue_full"),
		"tenant_quota": m.Counter("serve.admit.rejected.tenant_quota"),
		"draining":     m.Counter("serve.admit.rejected.draining"),
	}
	s.vSubmitted = m.CounterVec("serve.tenant.jobs.submitted", "tenant", "workload")
	s.vFinished = m.CounterVec("serve.tenant.jobs.finished", "tenant", "workload", "state")
	s.vRejected = m.CounterVec("serve.tenant.rejected", "tenant", "reason")
	s.vQueueDepth = m.GaugeVec("serve.tenant.queue.depth", "tenant")
	s.vRunning = m.GaugeVec("serve.tenant.jobs.running", "tenant")
	s.vQueueWait = m.HistogramVec("serve.tenant.queue.wait.seconds", latencyBounds, "tenant")
	s.vRunSeconds = m.HistogramVec("serve.tenant.job.run.seconds", latencyBounds, "tenant", "workload")
	s.vCommBytes = m.CounterVec("serve.tenant.comm.bytes", "tenant")
	s.vFLOPs = m.CounterVec("serve.tenant.flops", "tenant")
	s.vJobGFLOPS = m.HistogramVec("serve.tenant.job.gflops", obs.GFLOPSBuckets, "tenant")

	for i := 0; i < opts.Slots; i++ {
		e := engine.New(opts.Planner, opts.Cluster, opts.BlockSize)
		tr := obs.NewTracer()
		e.SetObserver(tr, m)
		e.SetSharedPlanCache(s.shared)
		if !opts.DisableRewrite {
			e.SetRewriter(rewrite.New())
		}
		if opts.CheckpointDir != "" {
			dir := filepath.Join(opts.CheckpointDir, fmt.Sprintf("slot-%d", i))
			if err := e.SetCheckpoint(dir, engine.CheckpointPolicy{Interval: 1}); err != nil {
				return nil, fmt.Errorf("serve: slot %d checkpoint: %w", i, err)
			}
		}
		slot := &engineSlot{id: i, e: e, tracer: tr}
		s.slots = append(s.slots, slot)
		s.freeSlots = append(s.freeSlots, slot)
	}
	go s.dispatcher()
	return s, nil
}

// Registry returns the service's workload registry.
func (s *Service) Registry() *workload.Registry { return s.opts.Registry }

// Tracers returns the per-slot tracers (for trace export and tests).
func (s *Service) Tracers() []*obs.Tracer {
	trs := make([]*obs.Tracer, len(s.slots))
	for i, sl := range s.slots {
		trs[i] = sl.tracer
	}
	return trs
}

func (s *Service) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		q, has := s.opts.Quotas[name]
		if !has {
			q = s.opts.DefaultQuota
		}
		ts = &tenantState{quota: q.withDefaults(s.opts.DefaultQuota)}
		s.tenants[name] = ts
	}
	return ts
}

func (s *Service) rejectLocked(tenant string, ts *tenantState, reason string, r *Rejection) error {
	s.cRejected.Inc()
	if c, ok := s.rejectedByRC[reason]; ok {
		c.Inc()
	}
	s.vRejected.With(tenant, reason).Inc()
	if ts != nil {
		ts.rejected++
	}
	s.logger.Warn("job rejected",
		"tenant", tenant, "reason", reason, "detail", r.Reason,
		"retryable", r.Retryable, "retry_after_sec", r.RetryAfter.Seconds())
	return r
}

// tenantGaugesLocked refreshes the tenant's live queue/running gauges.
func (s *Service) tenantGaugesLocked(tenant string, ts *tenantState) {
	s.vQueueDepth.With(tenant).Set(float64(ts.queued))
	s.vRunning.With(tenant).Set(float64(ts.running))
}

// Submit prices the job, applies admission control, and enqueues it. The
// returned status snapshot carries the assigned job ID. Admission refusals
// are *Rejection errors; anything else is a validation failure.
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	if spec.Tenant == "" {
		return JobStatus{}, fmt.Errorf("serve: job has no tenant")
	}
	if spec.Priority < PriorityHigh {
		spec.Priority = PriorityHigh
	}
	if spec.Priority > PriorityLow {
		spec.Priority = PriorityLow
	}
	built, err := s.buildSpec(spec)
	if err != nil {
		return JobStatus{}, err
	}
	est := built.EstimatedBytes(s.opts.BlockSize)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, fmt.Errorf("serve: service stopped")
	}
	ts := s.tenant(spec.Tenant)
	if s.draining {
		return JobStatus{}, s.rejectLocked(spec.Tenant, ts, "draining",
			&Rejection{Reason: "service draining", Retryable: false})
	}
	if est > ts.quota.MaxBytes {
		return JobStatus{}, s.rejectLocked(spec.Tenant, ts, "tenant_quota", &Rejection{
			Reason: fmt.Sprintf("job needs %d estimated bytes, tenant quota is %d", est, ts.quota.MaxBytes),
		})
	}
	if ts.queued >= ts.quota.MaxQueued {
		return JobStatus{}, s.rejectLocked(spec.Tenant, ts, "tenant_quota", &Rejection{
			Reason:     fmt.Sprintf("tenant has %d jobs queued (quota %d)", ts.queued, ts.quota.MaxQueued),
			RetryAfter: retryAfter(s.q.size),
			Retryable:  true,
		})
	}
	if s.q.size >= s.opts.QueueCapacity {
		return JobStatus{}, s.rejectLocked(spec.Tenant, ts, "queue_full", &Rejection{
			Reason:     fmt.Sprintf("admission queue full (%d)", s.q.size),
			RetryAfter: retryAfter(s.q.size),
			Retryable:  true,
		})
	}

	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		spec:      spec,
		built:     built,
		estBytes:  est,
		priority:  spec.Priority,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.q.push(j)
	ts.queued++
	ts.submitted++
	s.cSubmitted.Inc()
	s.vSubmitted.With(spec.Tenant, spec.Workload).Inc()
	s.gQueueDepth.Set(float64(s.q.size))
	s.tenantGaugesLocked(spec.Tenant, ts)
	s.logger.Info("job submitted",
		"job", j.id, "tenant", spec.Tenant, "workload", spec.Workload,
		"priority", j.priority, "est_bytes", est, "queue_depth", s.q.size)
	s.cond.Broadcast()
	return j.status(), nil
}

// buildSpec materializes the job's inputs and program: registry jobs resolve
// through the built-input cache, programmatic jobs are validated and wrapped.
func (s *Service) buildSpec(spec JobSpec) (*workload.BuiltJob, error) {
	if spec.Workload != "" {
		key := jobCacheKey(spec.Workload, s.opts.BlockSize, spec.Params)
		if b := s.jobCache.get(key); b != nil {
			return b, nil
		}
		b, err := s.opts.Registry.Build(spec.Workload, s.opts.BlockSize, spec.Params)
		if err != nil {
			return nil, err
		}
		s.jobCache.put(key, b)
		return b, nil
	}
	if spec.Program == nil {
		return nil, fmt.Errorf("serve: job names no workload and carries no program")
	}
	if err := spec.Program.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid program: %w", err)
	}
	b := &workload.BuiltJob{
		Inputs:     spec.Inputs,
		Program:    spec.Program,
		Iterations: spec.Iterations,
		Params:     spec.Params,
		Outputs:    spec.Outputs,
		Scalars:    spec.Scalars,
	}
	if b.Iterations < 1 {
		b.Iterations = 1
	}
	if len(b.Outputs) == 0 {
		for _, a := range spec.Program.Assignments() {
			b.Outputs = append(b.Outputs, a.Name)
		}
	}
	if len(b.Scalars) == 0 {
		for _, so := range spec.Program.ScalarOuts() {
			b.Scalars = append(b.Scalars, so.Name)
		}
	}
	return b, nil
}

// dispatchableLocked reports whether a free slot and a runnable queued job
// exist right now.
func (s *Service) dispatchableLocked() bool {
	if len(s.freeSlots) == 0 || s.q.size == 0 {
		return false
	}
	for p := range s.q.levels {
		for _, j := range s.q.levels[p] {
			if s.tenants[j.spec.Tenant].canRun(j.estBytes) {
				return true
			}
		}
	}
	return false
}

// dispatcher is the single scheduling goroutine: it leases slots to runnable
// jobs in priority-then-FIFO order, skipping tenants at their quota.
func (s *Service) dispatcher() {
	defer close(s.dispatcherDone)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && !s.dispatchableLocked() {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		slot := s.freeSlots[len(s.freeSlots)-1]
		s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
		j := s.q.pop(func(j *job) bool {
			return s.tenants[j.spec.Tenant].canRun(j.estBytes)
		})
		ts := s.tenants[j.spec.Tenant]
		ts.queued--
		ts.running++
		ts.runningBytes += j.estBytes
		j.state = StateRunning
		j.started = time.Now()
		s.running++
		wait := j.started.Sub(j.submitted).Seconds()
		s.hQueueWait.Observe(wait)
		s.vQueueWait.With(j.spec.Tenant).Observe(wait)
		s.gQueueDepth.Set(float64(s.q.size))
		s.gRunning.Set(float64(s.running))
		s.tenantGaugesLocked(j.spec.Tenant, ts)
		s.logger.Info("job started",
			"job", j.id, "tenant", j.spec.Tenant, "workload", j.spec.Workload,
			"slot", slot.id, "queue_sec", wait)
		s.wg.Add(1)
		go s.runJob(j, slot)
	}
}

// runJob executes one job on a leased slot: reset the session, bind the
// built inputs, run the program for its iterations under the job context,
// and publish the terminal state. The job's root span parents every engine
// stage span emitted on the slot's tracer.
func (s *Service) runJob(j *job, slot *engineSlot) {
	defer s.wg.Done()
	deadline := j.spec.Deadline
	if deadline <= 0 {
		deadline = s.opts.DefaultDeadline
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	s.mu.Lock()
	j.cancel = cancel
	asked := j.cancelAsked
	s.mu.Unlock()
	if asked {
		cancel()
	}

	e := slot.e
	e.Reset()
	var runErr error
	for name, g := range j.built.Inputs {
		if err := e.Bind(name, g); err != nil {
			runErr = fmt.Errorf("serve: bind %s: %w", name, err)
			break
		}
	}

	root := slot.tracer.Start("serve", "job", 0,
		obs.String("job", j.id),
		obs.String("tenant", j.spec.Tenant),
		obs.String("workload", j.spec.Workload),
		obs.Int64("est_bytes", j.estBytes))
	prev := slot.tracer.SetScope(root)
	var total engine.Metrics
	iters := 0
	params := map[string]float64(j.spec.Params)
	for i := 0; runErr == nil && i < j.built.Iterations; i++ {
		m, err := e.RunCtx(ctx, j.built.Program, params)
		if err != nil {
			runErr = err
			break
		}
		total.Add(m)
		iters++
	}
	slot.tracer.SetScope(prev)

	state := StateDone
	var res *Result
	if runErr == nil {
		res = &Result{Grids: make(map[string]*matrix.Grid), Scalars: make(map[string]float64)}
		for _, name := range j.built.Outputs {
			g, ok := e.Grid(name)
			if !ok {
				runErr = fmt.Errorf("serve: job produced no output %q", name)
				break
			}
			res.Grids[name] = g
		}
		for _, name := range j.built.Scalars {
			if v, ok := e.Scalar(name); ok {
				res.Scalars[name] = v
			}
		}
	}
	if runErr != nil {
		res = nil
		state = StateFailed
		if errors.Is(runErr, context.Canceled) {
			state = StateCanceled
		}
	}
	slot.tracer.End(root, obs.String("state", string(state)), obs.Int64("iterations", int64(iters)))

	// Drain the slot tracer into the flight recorder: the slot ran only this
	// job since the last drain, so these spans are exactly its tree. Draining
	// per job also keeps a long-lived slot's tracer memory bounded.
	s.flight.record(j.id, slot.tracer.Spans())
	slot.tracer.Reset()

	s.finishJob(j, slot, state, runErr, res, total, iters)
}

// finishJob publishes the terminal state, returns the slot to the pool, and
// settles the tenant's accounting and the service metrics.
func (s *Service) finishJob(j *job, slot *engineSlot, state State, runErr error, res *Result, total engine.Metrics, iters int) {
	s.mu.Lock()
	ts := s.tenants[j.spec.Tenant]
	ts.running--
	ts.runningBytes -= j.estBytes
	ts.completed++
	j.state = state
	j.err = runErr
	j.result = res
	j.metrics = total
	j.iterations = iters
	j.finished = time.Now()
	switch state {
	case StateDone:
		s.cCompleted.Inc()
	case StateCanceled:
		j.canceled = true
		s.cCanceled.Inc()
	default:
		if errors.Is(runErr, context.DeadlineExceeded) {
			j.deadlined = true
		}
		var wf *dist.WorkerFailure
		if errors.As(runErr, &wf) {
			j.faulted = true
		}
		s.cFailed.Inc()
	}
	s.running--
	s.freeSlots = append(s.freeSlots, slot)
	s.gRunning.Set(float64(s.running))
	runSec := j.finished.Sub(j.started).Seconds()
	s.hRunSeconds.Observe(runSec)
	s.vFinished.With(j.spec.Tenant, j.spec.Workload, string(state)).Inc()
	s.vRunSeconds.With(j.spec.Tenant, j.spec.Workload).Observe(runSec)
	s.vCommBytes.With(j.spec.Tenant).Add(total.CommBytes)
	s.vFLOPs.With(j.spec.Tenant).Add(int64(total.FLOPs))
	if runSec > 0 && total.FLOPs > 0 {
		s.vJobGFLOPS.With(j.spec.Tenant).Observe(total.FLOPs / runSec / 1e9)
	}
	s.tenantGaugesLocked(j.spec.Tenant, ts)
	latency := j.finished.Sub(j.submitted).Seconds()
	s.cond.Broadcast()
	s.mu.Unlock()
	// Canceled jobs are client decisions, not service failures; only done and
	// failed jobs consume SLO budget.
	if state != StateCanceled {
		s.slo.record(j.spec.Tenant, latency, state == StateFailed)
	}
	logAttrs := []any{
		"job", j.id, "tenant", j.spec.Tenant, "workload", j.spec.Workload,
		"state", string(state), "run_sec", runSec, "latency_sec", latency,
		"iterations", iters, "comm_bytes", total.CommBytes, "flops", total.FLOPs,
	}
	if runErr != nil {
		logAttrs = append(logAttrs, "error", runErr.Error())
		s.logger.Warn("job finished", logAttrs...)
	} else {
		s.logger.Info("job finished", logAttrs...)
	}
	close(j.done)
}

// Status returns a snapshot of the job.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Result returns a finished job's output grids and scalars.
func (s *Service) Result(id string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if !j.state.Terminal() {
		return nil, ErrNotFinished
	}
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its final status.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return s.Status(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Cancel cancels a job: dequeued immediately if still waiting, or its run
// context is canceled if running. Canceling a terminal job is a no-op.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		s.q.remove(j)
		ts := s.tenants[j.spec.Tenant]
		ts.queued--
		ts.completed++
		j.state = StateCanceled
		j.canceled = true
		j.err = context.Canceled
		j.finished = time.Now()
		s.cCanceled.Inc()
		s.vFinished.With(j.spec.Tenant, j.spec.Workload, string(StateCanceled)).Inc()
		s.gQueueDepth.Set(float64(s.q.size))
		s.tenantGaugesLocked(j.spec.Tenant, ts)
		s.logger.Info("job canceled while queued", "job", j.id, "tenant", j.spec.Tenant)
		st := j.status()
		s.mu.Unlock()
		close(j.done)
		return st, nil
	case StateRunning:
		j.cancelAsked = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	st := j.status()
	s.mu.Unlock()
	return st, nil
}

// Stop drains the service: admission closes immediately, queued and running
// jobs are given until ctx's deadline to finish. Past the deadline the queue
// is shed and running jobs are canceled — engines configured with a
// checkpoint directory have already flushed a per-stage snapshot of whatever
// they were computing, so a forced stop loses at most the stages after the
// newest checkpoint. Stop returns nil on a clean drain and an error naming
// the shed/canceled jobs otherwise.
func (s *Service) Stop(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.dispatcherDone
		return nil
	}
	s.draining = true
	s.cond.Broadcast()
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-watchDone:
		}
	}()
	for (s.q.size > 0 || s.running > 0) && ctx.Err() == nil {
		s.cond.Wait()
	}
	var shed, canceled int
	var doneCh []chan struct{}
	if s.q.size > 0 || s.running > 0 {
		for _, j := range s.q.drain() {
			ts := s.tenants[j.spec.Tenant]
			ts.queued--
			ts.completed++
			j.state = StateCanceled
			j.canceled = true
			j.err = fmt.Errorf("serve: shed at shutdown: %w", context.Canceled)
			j.finished = time.Now()
			s.cCanceled.Inc()
			s.vFinished.With(j.spec.Tenant, j.spec.Workload, string(StateCanceled)).Inc()
			s.tenantGaugesLocked(j.spec.Tenant, ts)
			s.logger.Warn("job shed at shutdown", "job", j.id, "tenant", j.spec.Tenant)
			doneCh = append(doneCh, j.done)
			shed++
		}
		s.gQueueDepth.Set(0)
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancelAsked = true
				if j.cancel != nil {
					j.cancel()
				}
				canceled++
			}
		}
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	close(watchDone)
	for _, ch := range doneCh {
		close(ch)
	}
	s.wg.Wait()
	<-s.dispatcherDone
	for _, slot := range s.slots {
		slot.e.Close()
	}
	if shed > 0 || canceled > 0 {
		return fmt.Errorf("serve: drain deadline exceeded: shed %d queued, canceled %d running", shed, canceled)
	}
	return nil
}

// Draining reports whether the service has stopped admitting jobs.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Metrics returns the service's metrics registry (the /metrics exposition
// source).
func (s *Service) Metrics() *obs.Registry { return s.opts.Metrics }

// SLO returns the current per-tenant rolling SLO windows and burn rates (the
// /v1/slo payload).
func (s *Service) SLO() SLOSnapshot { return s.slo.snapshot() }

// ListJobs returns status snapshots of known jobs, filtered by tenant and/or
// state when non-empty, ordered by job ID (which is submission order).
func (s *Service) ListJobs(tenant string, state State) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant != "" && j.spec.Tenant != tenant {
			continue
		}
		if state != "" && j.state != state {
			continue
		}
		out = append(out, j.status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// ErrNoTrace is returned by JobTrace when a job finished but its spans have
// aged out of the flight recorder's ring.
var ErrNoTrace = fmt.Errorf("serve: job trace no longer recorded")

// JobTrace returns the recorded span tree of a completed job from the
// always-on flight recorder. Unknown IDs return ErrUnknownJob, jobs that
// have not finished return ErrNotFinished, and evicted traces return
// ErrNoTrace.
func (s *Service) JobTrace(id string) ([]obs.Span, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var terminal bool
	if ok {
		terminal = j.state.Terminal()
	}
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	if spans, found := s.flight.get(id); found {
		return spans, nil
	}
	if !terminal {
		return nil, ErrNotFinished
	}
	return nil, ErrNoTrace
}

// TracedJobIDs returns the job IDs currently held by the flight recorder,
// oldest first.
func (s *Service) TracedJobIDs() []string { return s.flight.ids() }
