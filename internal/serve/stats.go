package serve

import (
	"time"

	"dmac/internal/autoscale"
)

// CacheStats summarizes one shared cache for /v1/stats.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes,omitempty"`
}

// TenantStats is one tenant's live and cumulative accounting.
type TenantStats struct {
	Queued       int   `json:"queued"`
	Running      int   `json:"running"`
	RunningBytes int64 `json:"running_bytes"`
	Submitted    int64 `json:"submitted"`
	Completed    int64 `json:"completed"`
	Rejected     int64 `json:"rejected"`
}

// Stats is the /v1/stats snapshot.
type Stats struct {
	UptimeSec float64 `json:"uptime_sec"`
	Draining  bool    `json:"draining"`
	// Pool shape: live slots (draining included), idle slots, slots
	// retiring after a shrink, and the Resize target the dispatcher grows
	// toward. Exposed whether or not autoscaling is enabled.
	SlotsTotal    int `json:"slots_total"`
	SlotsFree     int `json:"slots_free"`
	SlotsDraining int `json:"slots_draining"`
	SlotsDesired  int `json:"slots_desired"`
	QueueDepth    int `json:"queue_depth"`
	Running       int `json:"running"`
	// QueuedEstBytes prices the backlog with the planner's block memory
	// model (the sum of queued jobs' admission estimates).
	QueuedEstBytes int64 `json:"queued_est_bytes"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`

	// QueueWaitCount/Sum summarize the queue-wait histogram (seconds); the
	// full distribution lives in the metrics registry.
	QueueWaitCount int64   `json:"queue_wait_count"`
	QueueWaitSum   float64 `json:"queue_wait_sum_sec"`
	RunCount       int64   `json:"run_count"`
	RunSum         float64 `json:"run_sum_sec"`

	// Quantiles estimated from the server-side histograms by linear
	// interpolation within buckets (obs.Histogram.Quantile), so clients and
	// benches read latency percentiles from the service instead of
	// recomputing them from raw samples.
	QueueWaitP50Sec float64 `json:"queue_wait_p50_sec"`
	QueueWaitP95Sec float64 `json:"queue_wait_p95_sec"`
	QueueWaitP99Sec float64 `json:"queue_wait_p99_sec"`
	RunP50Sec       float64 `json:"run_p50_sec"`
	RunP95Sec       float64 `json:"run_p95_sec"`
	RunP99Sec       float64 `json:"run_p99_sec"`

	PlanCache CacheStats             `json:"plan_cache"`
	JobCache  CacheStats             `json:"job_cache"`
	Tenants   map[string]TenantStats `json:"tenants"`

	// Autoscale is the controller's state when -autoscale is on.
	Autoscale *autoscale.Status `json:"autoscale,omitempty"`
}

// Stats snapshots the service for /v1/stats and the bench load generator.
func (s *Service) Stats() Stats {
	ph, pm, pe := s.shared.Stats()
	jh, jm, je, jb := s.jobCache.stats()
	// Controller status is read before s.mu: the controller's Tick may hold
	// its own lock while calling Observe/Resize, which take s.mu.
	as := s.AutoscaleStatus()
	st := Stats{
		UptimeSec: time.Since(s.start).Seconds(),
		PlanCache: CacheStats{Hits: ph, Misses: pm, Entries: pe},
		JobCache:  CacheStats{Hits: jh, Misses: jm, Entries: je, Bytes: jb},
		Tenants:   make(map[string]TenantStats),

		Submitted:      s.cSubmitted.Value(),
		Completed:      s.cCompleted.Value(),
		Failed:         s.cFailed.Value(),
		Canceled:       s.cCanceled.Value(),
		Rejected:       s.cRejected.Value(),
		QueueWaitCount: s.hQueueWait.Count(),
		QueueWaitSum:   s.hQueueWait.Sum(),
		RunCount:       s.hRunSeconds.Count(),
		RunSum:         s.hRunSeconds.Sum(),

		QueueWaitP50Sec: s.hQueueWait.Quantile(0.50),
		QueueWaitP95Sec: s.hQueueWait.Quantile(0.95),
		QueueWaitP99Sec: s.hQueueWait.Quantile(0.99),
		RunP50Sec:       s.hRunSeconds.Quantile(0.50),
		RunP95Sec:       s.hRunSeconds.Quantile(0.95),
		RunP99Sec:       s.hRunSeconds.Quantile(0.99),
	}
	st.Autoscale = as
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Draining = s.draining
	st.SlotsTotal = len(s.slots)
	st.SlotsFree = len(s.freeSlots)
	st.SlotsDraining = s.drainingSlots
	st.SlotsDesired = s.desiredSlots
	st.QueueDepth = s.q.size
	st.Running = s.running
	st.QueuedEstBytes = s.queuedEstBytes
	for name, ts := range s.tenants {
		st.Tenants[name] = TenantStats{
			Queued:       ts.queued,
			Running:      ts.running,
			RunningBytes: ts.runningBytes,
			Submitted:    ts.submitted,
			Completed:    ts.completed,
			Rejected:     ts.rejected,
		}
	}
	return st
}
