package serve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"dmac/internal/autoscale"
	"dmac/internal/dist"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/workload"
)

// pacedOptions are test options whose jobs spend real wall-clock time waiting
// (comm pacing), so a slot stays observably busy long enough to race resizes
// against running work deterministically.
func pacedOptions(paceSec float64) Options {
	opts := testOptions()
	opts.Cluster.PaceCommLatencySec = paceSec
	return opts
}

// slowJob is a served job with enough iterations that, paced, it runs for
// hundreds of milliseconds.
func slowJob(tenant string, seed int) JobSpec {
	return JobSpec{
		Tenant:   tenant,
		Workload: "pagerank",
		Params:   workload.Params{"nodes": 48, "iters": 4, "seed": float64(seed)},
	}
}

// TestStatsExposeSlots pins satellite 1: pool-shape fields in the stats
// snapshot and the serve.slots gauge family in the Prometheus exposition,
// with autoscaling off.
func TestStatsExposeSlots(t *testing.T) {
	opts := testOptions()
	opts.Metrics = obs.NewRegistry()
	s := newTestService(t, opts)

	st := s.Stats()
	if st.SlotsTotal != 2 || st.SlotsFree != 2 || st.SlotsDraining != 0 || st.SlotsDesired != 2 {
		t.Fatalf("stats slots: total %d free %d draining %d desired %d, want 2/2/0/2",
			st.SlotsTotal, st.SlotsFree, st.SlotsDraining, st.SlotsDesired)
	}
	if st.Autoscale != nil {
		t.Fatalf("fixed pool advertises autoscale status: %+v", st.Autoscale)
	}

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, opts.Metrics.Snapshot()); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, state := range []string{"total", "free", "draining", "desired"} {
		want := `dmac_serve_slots{state="` + state + `"}`
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestResizeGrowIsLazy pins that growing raises the desired size immediately
// but constructs engines only when runnable work needs them.
func TestResizeGrowIsLazy(t *testing.T) {
	opts := pacedOptions(0.01)
	opts.QueueCapacity = 16
	opts.DefaultQuota = TenantQuota{MaxConcurrent: 8, MaxQueued: 16}
	s := newTestService(t, opts)
	if err := s.Resize(5); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SlotsDesired != 5 {
		t.Fatalf("desired %d after Resize(5)", st.SlotsDesired)
	}
	if st.SlotsTotal != 2 {
		t.Fatalf("grow constructed eagerly: total %d, want 2 until work arrives", st.SlotsTotal)
	}

	// Enough runnable work forces lazy construction past the initial size.
	ids := make([]string, 5)
	for i := range ids {
		jst, err := s.Submit(slowJob("t", i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = jst.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i, id := range ids {
		fin, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, fin.State, fin.Error)
		}
		params := workload.Params{"nodes": 48, "iters": 4, "seed": float64(i)}
		want, _ := soloRun(t, opts, "pagerank", params)
		res, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		for name, wg := range want {
			if got := res.Grids[name]; got == nil || !matrix.GridEqual(got, wg, 0) {
				t.Errorf("job %d output %s diverged after lazy grow", i, name)
			}
		}
	}
	// Slots never leave the pool without a shrink, so the final total shows
	// how far lazy construction actually went.
	if st := s.Stats(); st.SlotsTotal < 3 {
		t.Errorf("pool never grew: total %d after 5 concurrent jobs with desired 5", st.SlotsTotal)
	}
}

// TestResizeShrinkDrainsBusySlots pins the drain protocol: shrinking under
// running jobs marks slots draining, never cancels them, and retires each
// slot only at its job's terminal transition.
func TestResizeShrinkDrainsBusySlots(t *testing.T) {
	opts := pacedOptions(0.02)
	s := newTestService(t, opts)

	a, err := s.Submit(slowJob("alice", 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(slowJob("bob", 2))
	if err != nil {
		t.Fatal(err)
	}
	// Both slots busy; shrink to 1 must drain, not kill.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Running < 2 {
		if time.Now().After(deadline) {
			t.Fatal("jobs never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Resize(1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SlotsDraining != 1 || st.SlotsTotal != 2 || st.SlotsDesired != 1 {
		t.Fatalf("after shrink under load: total %d draining %d desired %d, want 2/1/1",
			st.SlotsTotal, st.SlotsDraining, st.SlotsDesired)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i, id := range []string{a.ID, b.ID} {
		fin, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("job %d: %s (%s) — a resize must never cancel a running job", i, fin.State, fin.Error)
		}
	}
	// The draining slot retired at its terminal transition.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st = s.Stats()
		if st.SlotsTotal == 1 && st.SlotsDraining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining slot never retired: total %d draining %d", st.SlotsTotal, st.SlotsDraining)
		}
		time.Sleep(time.Millisecond)
	}
	// Results stayed bit-identical to solo runs.
	for i, id := range []string{a.ID, b.ID} {
		res, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		params := workload.Params{"nodes": 48, "iters": 4, "seed": float64(i + 1)}
		want, _ := soloRun(t, opts, "pagerank", params)
		for name, wg := range want {
			if got := res.Grids[name]; got == nil || !matrix.GridEqual(got, wg, 0) {
				t.Errorf("job %d output %s diverged across the drain", i, name)
			}
		}
	}
}

// TestResizeGrowReclaimsDrainingSlot pins that a grow arriving while a slot
// is draining undrains it instead of constructing a new engine.
func TestResizeGrowReclaimsDrainingSlot(t *testing.T) {
	opts := pacedOptions(0.02)
	s := newTestService(t, opts)
	a, err := s.Submit(slowJob("alice", 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(slowJob("bob", 2))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Running < 2 {
		if time.Now().After(deadline) {
			t.Fatal("jobs never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Resize(1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SlotsDraining != 1 {
		t.Fatalf("draining %d, want 1", st.SlotsDraining)
	}
	if err := s.Resize(2); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SlotsDraining != 0 || st.SlotsTotal != 2 {
		t.Fatalf("after undrain: total %d draining %d, want 2/0", st.SlotsTotal, st.SlotsDraining)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, id := range []string{a.ID, b.ID} {
		if fin, err := s.Wait(ctx, id); err != nil || fin.State != StateDone {
			t.Fatalf("job %s: %v %v", id, fin.State, err)
		}
	}
	if st := s.Stats(); st.SlotsTotal != 2 {
		t.Fatalf("reclaimed pool: total %d, want 2", st.SlotsTotal)
	}
}

// TestResizeConcurrentChurnLosesNothing is the no-job-lost-or-duplicated
// pin: jobs stream in while the pool is resized up and down concurrently;
// every job reaches exactly one terminal Done state and the completion
// counters balance.
func TestResizeConcurrentChurnLosesNothing(t *testing.T) {
	opts := pacedOptions(0.002)
	opts.QueueCapacity = 128
	opts.DefaultQuota = TenantQuota{MaxConcurrent: 8, MaxQueued: 64}
	s := newTestService(t, opts)

	const jobs = 36
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Resize(1 + rng.Intn(4)); err != nil {
				return // service stopping
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	ids := make([]string, jobs)
	for i := range ids {
		st, err := s.Submit(slowJob("t", i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, id := range ids {
		fin, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, fin.State, fin.Error)
		}
	}
	close(stop)
	churn.Wait()

	st := s.Stats()
	if st.Completed != jobs || st.Failed != 0 || st.Canceled != 0 {
		t.Fatalf("accounting across churn: completed %d failed %d canceled %d, want %d/0/0",
			st.Completed, st.Failed, st.Canceled, jobs)
	}
	if st.QueueDepth != 0 || st.Running != 0 || st.QueuedEstBytes != 0 {
		t.Fatalf("leftover load: depth %d running %d queued bytes %d", st.QueueDepth, st.Running, st.QueuedEstBytes)
	}
}

// TestShrinkDrainSafetyUnderChaos is satellite 3: a slot shrunk away while
// running a job under injected worker kills and block corruption still
// completes bit-identically (or fails typed after exhausted retries), and is
// never canceled by the resize. Checkpointing is on, so recovery may also
// restore from flushed snapshots.
func TestShrinkDrainSafetyUnderChaos(t *testing.T) {
	opts := pacedOptions(0.02)
	opts.CheckpointDir = t.TempDir()
	opts.Cluster.Faults = dist.FaultPlan{
		Seed:        42,
		Rate:        0.05,
		TaskFaults:  true,
		CorruptRate: 0.05,
	}
	s := newTestService(t, opts)

	a, err := s.Submit(slowJob("alice", 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(slowJob("bob", 4))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Running < 2 {
		if time.Now().After(deadline) {
			t.Fatal("jobs never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Resize(1); err != nil {
		t.Fatal(err)
	}

	clean := testOptions()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, id := range []string{a.ID, b.ID} {
		fin, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		switch fin.State {
		case StateDone:
			res, err := s.Result(id)
			if err != nil {
				t.Fatal(err)
			}
			params := workload.Params{"nodes": 48, "iters": 4, "seed": float64(i + 3)}
			want, _ := soloRun(t, clean, "pagerank", params)
			for name, wg := range want {
				if got := res.Grids[name]; got == nil || !matrix.GridEqual(got, wg, 0) {
					t.Errorf("job %d output %s diverged under chaos + drain", i, name)
				}
			}
		case StateFailed:
			if !fin.Faulted {
				t.Errorf("job %d failed untyped under chaos: %s", i, fin.Error)
			}
		default:
			t.Errorf("job %d: state %s — the resize must never cancel a draining slot's job", i, fin.State)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.SlotsTotal == 1 && st.SlotsDraining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining slot never retired under chaos")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryAfterShrinksOnPendingScaleUp is satellite 2: a queue-full
// rejection advertises a shorter Retry-After once a scale-up is pending,
// because capacity is about to arrive.
func TestRetryAfterShrinksOnPendingScaleUp(t *testing.T) {
	opts := pacedOptions(0.05)
	opts.Slots = 1
	opts.QueueCapacity = 3
	// MaxConcurrent 1 keeps the queued jobs un-runnable while one runs, so a
	// grown desired size is NOT immediately consumed by lazy construction —
	// the pending-scale-up state stays observable.
	opts.DefaultQuota = TenantQuota{MaxConcurrent: 1, MaxQueued: 16}
	s := newTestService(t, opts)

	if _, err := s.Submit(slowJob("a", 10)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Running < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(slowJob("a", 11+i)); err != nil {
			t.Fatal(err)
		}
	}

	reject := func() *Rejection {
		t.Helper()
		_, err := s.Submit(slowJob("a", 99))
		var rej *Rejection
		if !errors.As(err, &rej) || !rej.Retryable {
			t.Fatalf("want a retryable rejection, got %v", err)
		}
		return rej
	}
	before := reject()
	if err := s.Resize(4); err != nil {
		t.Fatal(err)
	}
	after := reject()
	if after.RetryAfter >= before.RetryAfter {
		t.Fatalf("Retry-After did not shrink on pending scale-up: before %v, after %v",
			before.RetryAfter, after.RetryAfter)
	}
}

// TestAutoscaleEndToEnd wires the real controller to a real service: a burst
// of slow jobs must grow the pool within the bounds, and an idle cooldown
// must shrink it back to min — with every job completing.
func TestAutoscaleEndToEnd(t *testing.T) {
	opts := pacedOptions(0.02)
	opts.Slots = 1
	opts.QueueCapacity = 64
	opts.DefaultQuota = TenantQuota{MaxConcurrent: 8, MaxQueued: 32}
	opts.Autoscale = &autoscale.Config{
		Min:                1,
		Max:                4,
		TargetQueueWaitSec: 0.05,
		Interval:           20 * time.Millisecond,
		ScaleUpCooldown:    20 * time.Millisecond,
		ScaleDownCooldown:  300 * time.Millisecond,
		DownStableTicks:    3,
	}
	s := newTestService(t, opts)

	var ids []string
	for i := 0; i < 12; i++ {
		st, err := s.Submit(slowJob("t", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	peak := 1
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			st := s.Stats()
			if st.SlotsTotal > peak {
				peak = st.SlotsTotal
			}
			if st.Completed+st.Failed+st.Canceled >= int64(len(ids)) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	for i, id := range ids {
		fin, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, fin.State, fin.Error)
		}
	}
	<-done
	if peak < 2 {
		t.Errorf("autoscaler never grew the pool: peak %d", peak)
	}

	// Idle: the pool shrinks back to min within a few cooldowns.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := s.Stats()
		if st.SlotsTotal == 1 && st.SlotsDraining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never shrank back: total %d", st.SlotsTotal)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := s.Stats()
	if st.Autoscale == nil {
		t.Fatal("autoscale status missing from stats")
	}
	if st.Autoscale.Ups == 0 || st.Autoscale.Downs == 0 {
		t.Errorf("decision counters: ups %d downs %d, want both > 0", st.Autoscale.Ups, st.Autoscale.Downs)
	}
	if ds := s.AutoscaleDecisions(); len(ds) == 0 {
		t.Error("no decisions recorded")
	}
}

// TestResizeValidation pins the error paths: resizing below 1 and resizing a
// stopping service both fail.
func TestResizeValidation(t *testing.T) {
	s := newTestService(t, testOptions())
	if err := s.Resize(0); err == nil {
		t.Error("Resize(0) succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Resize(2); err == nil {
		t.Error("Resize on a stopped service succeeded")
	}
}
