package serve

import "time"

// TenantQuota bounds one tenant's footprint on the service. Zero values mean
// "use the service default" (Options.DefaultQuota), whose own zero values
// fall back to the built-in defaults below.
type TenantQuota struct {
	// MaxConcurrent caps the tenant's simultaneously running jobs.
	MaxConcurrent int
	// MaxQueued caps the tenant's jobs waiting in the admission queue.
	MaxQueued int
	// MaxBytes caps the summed EstimatedBytes of the tenant's running jobs,
	// priced by the planner's block memory model.
	MaxBytes int64
}

const (
	defaultMaxConcurrent = 2
	defaultMaxQueued     = 8
	defaultMaxBytes      = 256 << 20
)

func (q TenantQuota) withDefaults(def TenantQuota) TenantQuota {
	if q.MaxConcurrent <= 0 {
		q.MaxConcurrent = def.MaxConcurrent
	}
	if q.MaxQueued <= 0 {
		q.MaxQueued = def.MaxQueued
	}
	if q.MaxBytes <= 0 {
		q.MaxBytes = def.MaxBytes
	}
	if q.MaxConcurrent <= 0 {
		q.MaxConcurrent = defaultMaxConcurrent
	}
	if q.MaxQueued <= 0 {
		q.MaxQueued = defaultMaxQueued
	}
	if q.MaxBytes <= 0 {
		q.MaxBytes = defaultMaxBytes
	}
	return q
}

// tenantState is one tenant's live accounting, guarded by the service mutex.
type tenantState struct {
	quota        TenantQuota
	queued       int
	running      int
	runningBytes int64
	// cumulative, exported through Stats
	submitted int64
	completed int64
	rejected  int64
}

// canRun reports whether the tenant may start a job of the given price now.
func (t *tenantState) canRun(estBytes int64) bool {
	return t.running < t.quota.MaxConcurrent &&
		t.runningBytes+estBytes <= t.quota.MaxBytes
}

// queue is the bounded admission queue: FIFO within each priority level,
// higher priority (lower index) first. Guarded by the service mutex.
type queue struct {
	levels [numPriority][]*job
	size   int
}

func (q *queue) push(j *job) {
	q.levels[j.priority] = append(q.levels[j.priority], j)
	q.size++
}

// pop removes and returns the first job (in priority-then-FIFO order) whose
// tenant can run it now, per runnable. Skipping over-quota tenants keeps one
// saturated tenant from head-of-line-blocking everyone else's jobs.
func (q *queue) pop(runnable func(*job) bool) *job {
	for p := range q.levels {
		for i, j := range q.levels[p] {
			if runnable(j) {
				q.levels[p] = append(q.levels[p][:i], q.levels[p][i+1:]...)
				q.size--
				return j
			}
		}
	}
	return nil
}

// remove deletes a specific job (for cancellation while queued).
func (q *queue) remove(target *job) bool {
	for p := range q.levels {
		for i, j := range q.levels[p] {
			if j == target {
				q.levels[p] = append(q.levels[p][:i], q.levels[p][i+1:]...)
				q.size--
				return true
			}
		}
	}
	return false
}

// drain empties the queue and returns everything that was waiting.
func (q *queue) drain() []*job {
	var all []*job
	for p := range q.levels {
		all = append(all, q.levels[p]...)
		q.levels[p] = nil
	}
	q.size = 0
	return all
}

// retryAfter estimates a backoff hint proportional to the current backlog:
// deeper queues mean longer waits before capacity frees up.
func retryAfter(depth int) time.Duration {
	d := 100*time.Millisecond + time.Duration(depth)*50*time.Millisecond
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
