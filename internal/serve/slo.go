package serve

import (
	"sort"
	"sync"
	"time"
)

// Per-tenant SLO tracking: every terminal job (done or failed; canceled jobs
// are client decisions and don't consume budget) is classified good or bad
// against the tenant's objectives — failed jobs and jobs whose end-to-end
// latency (queue + run) exceeds the latency objective are bad — and
// aggregated into rolling windows. The tracker reports, per tenant and per
// window, the error rate, the slow rate, and the burn rate: the ratio of the
// observed bad fraction to the budgeted bad fraction (1 - objective). A burn
// rate of 1 consumes the error budget exactly at the sustainable pace;
// multi-window burn rates (fast 5m window for pages, slow 1h window for
// tickets) are the standard SRE alerting signal and the input the roadmap's
// elastic autoscaler consumes.

// SLOConfig is one tenant's service-level objectives. Zero values fall back
// to the service default (Options.SLO), whose own zero values fall back to
// the built-in defaults.
type SLOConfig struct {
	// Objective is the target fraction of good jobs, e.g. 0.99.
	Objective float64
	// LatencySec is the end-to-end latency objective: a job finishing
	// (successfully) later than this is slow, and slow jobs burn budget.
	LatencySec float64
}

const (
	defaultSLOObjective  = 0.99
	defaultSLOLatencySec = 5.0
)

func (c SLOConfig) withDefaults(def SLOConfig) SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = def.Objective
	}
	if c.LatencySec <= 0 {
		c.LatencySec = def.LatencySec
	}
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = defaultSLOObjective
	}
	if c.LatencySec <= 0 {
		c.LatencySec = defaultSLOLatencySec
	}
	return c
}

// SLO window geometry: ten-second buckets in a ring wide enough for the
// longest window plus the current partial bucket, so recording never
// overwrites a bucket still inside any window.
const (
	sloBucketSec = 10
	sloRingLen   = 361
)

// sloWindows are the reported rolling windows (buckets per window).
var sloWindows = []struct {
	Name    string
	Buckets int
}{
	{"5m", 30},
	{"1h", 360},
}

type sloBucket struct {
	epoch      int64 // bucket timestamp in units of sloBucketSec; stale entries are skipped
	count      int64
	errors     int64
	slow       int64
	latencySum float64
}

type sloSeries struct {
	cfg     SLOConfig
	buckets [sloRingLen]sloBucket
}

// sloTracker aggregates per-tenant SLO windows. All methods are safe for
// concurrent use; now is injectable for deterministic window tests.
type sloTracker struct {
	mu      sync.Mutex
	def     SLOConfig
	configs map[string]SLOConfig
	now     func() time.Time
	tenants map[string]*sloSeries
}

func newSLOTracker(def SLOConfig, configs map[string]SLOConfig) *sloTracker {
	return &sloTracker{
		def:     def.withDefaults(SLOConfig{Objective: defaultSLOObjective, LatencySec: defaultSLOLatencySec}),
		configs: configs,
		now:     time.Now,
		tenants: make(map[string]*sloSeries),
	}
}

func (t *sloTracker) series(tenant string) *sloSeries {
	s, ok := t.tenants[tenant]
	if !ok {
		s = &sloSeries{cfg: t.configs[tenant].withDefaults(t.def)}
		t.tenants[tenant] = s
	}
	return s
}

// record classifies one terminal job into the tenant's current bucket.
func (t *sloTracker) record(tenant string, latencySec float64, failed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.series(tenant)
	epoch := t.now().Unix() / sloBucketSec
	b := &s.buckets[epoch%sloRingLen]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.count++
	b.latencySum += latencySec
	switch {
	case failed:
		b.errors++
	case latencySec > s.cfg.LatencySec:
		b.slow++
	}
}

// SLOWindow is one rolling window's aggregate for one tenant.
type SLOWindow struct {
	WindowSec float64 `json:"window_sec"`
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	Slow      int64   `json:"slow"`
	// ErrorRate and SlowRate are fractions of the window's jobs; BadRate is
	// their sum (a job is bad for exactly one reason).
	ErrorRate      float64 `json:"error_rate"`
	SlowRate       float64 `json:"slow_rate"`
	BadRate        float64 `json:"bad_rate"`
	MeanLatencySec float64 `json:"mean_latency_sec"`
	// BurnRate is BadRate divided by the error budget (1 - objective): 1.0
	// burns the budget exactly at the sustainable pace.
	BurnRate float64 `json:"burn_rate"`
}

// TenantSLO is one tenant's /v1/slo entry.
type TenantSLO struct {
	Objective           float64              `json:"objective"`
	LatencyObjectiveSec float64              `json:"latency_objective_sec"`
	Windows             map[string]SLOWindow `json:"windows"`
}

// SLOSnapshot is the /v1/slo response body.
type SLOSnapshot struct {
	Tenants map[string]TenantSLO `json:"tenants"`
}

// maxFastBurn is the worst per-tenant burn rate over the fast (5m) window —
// the autoscaler's SLO-escalation signal. Zero until any tenant records a
// terminal job in the window.
func (t *sloTracker) maxFastBurn() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	nowEpoch := t.now().Unix() / sloBucketSec
	fast := sloWindows[0]
	var worst float64
	for _, s := range t.tenants {
		var count, bad int64
		for i := range s.buckets {
			b := &s.buckets[i]
			if b.epoch <= nowEpoch-int64(fast.Buckets) || b.epoch > nowEpoch {
				continue
			}
			count += b.count
			bad += b.errors + b.slow
		}
		if count == 0 {
			continue
		}
		burn := (float64(bad) / float64(count)) / (1 - s.cfg.Objective)
		if burn > worst {
			worst = burn
		}
	}
	return worst
}

// snapshot aggregates every tenant's windows as of now.
func (t *sloTracker) snapshot() SLOSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := SLOSnapshot{Tenants: make(map[string]TenantSLO, len(t.tenants))}
	nowEpoch := t.now().Unix() / sloBucketSec
	names := make([]string, 0, len(t.tenants))
	for name := range t.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := t.tenants[name]
		ten := TenantSLO{
			Objective:           s.cfg.Objective,
			LatencyObjectiveSec: s.cfg.LatencySec,
			Windows:             make(map[string]SLOWindow, len(sloWindows)),
		}
		for _, w := range sloWindows {
			var win SLOWindow
			win.WindowSec = float64(w.Buckets * sloBucketSec)
			var latencySum float64
			for i := range s.buckets {
				b := &s.buckets[i]
				if b.epoch <= nowEpoch-int64(w.Buckets) || b.epoch > nowEpoch {
					continue
				}
				win.Count += b.count
				win.Errors += b.errors
				win.Slow += b.slow
				latencySum += b.latencySum
			}
			if win.Count > 0 {
				n := float64(win.Count)
				win.ErrorRate = float64(win.Errors) / n
				win.SlowRate = float64(win.Slow) / n
				win.BadRate = float64(win.Errors+win.Slow) / n
				win.MeanLatencySec = latencySum / n
				win.BurnRate = win.BadRate / (1 - s.cfg.Objective)
			}
			ten.Windows[w.Name] = win
		}
		snap.Tenants[name] = ten
	}
	return snap
}
