package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postJob(t *testing.T, url string, body string) (*http.Response, JobResponse, errorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	var er errorResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&er)
	}
	return resp, jr, er
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestHTTPLifecycle exercises the whole JSON API: submit, poll to done,
// fetch the result summary, and read service stats.
func TestHTTPLifecycle(t *testing.T) {
	s := newTestService(t, testOptions())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var workloads []struct {
		Name string `json:"name"`
	}
	if code := getJSON(t, srv.URL+"/v1/workloads", &workloads); code != http.StatusOK || len(workloads) != 3 {
		t.Fatalf("workloads = %d entries (code %d)", len(workloads), code)
	}

	resp, jr, er := postJob(t, srv.URL,
		`{"tenant":"alice","workload":"pagerank","params":{"nodes":48,"iters":2,"seed":1}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %+v", resp.StatusCode, er)
	}
	if jr.ID == "" || jr.State != StateQueued {
		t.Fatalf("submit response: %+v", jr)
	}

	var final JobResponse
	deadline := time.Now().Add(time.Minute)
	for {
		var poll JobResponse
		if code := getJSON(t, srv.URL+"/v1/jobs/"+jr.ID+"?include=result", &poll); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if poll.State.Terminal() {
			final = poll
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish over HTTP")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != StateDone {
		t.Fatalf("final state %s: %s", final.State, final.Error)
	}
	out, ok := final.Outputs["rank"]
	if !ok {
		t.Fatal("result did not include the rank output")
	}
	if out.Rows != 1 || out.Cols != 48 || len(out.Data) != 48 {
		t.Errorf("rank summary = %dx%d with %d inline cells", out.Rows, out.Cols, len(out.Data))
	}
	// PageRank mass is conserved: the vector sums to ~1.
	if out.Sum < 0.99 || out.Sum > 1.01 {
		t.Errorf("rank sum = %v, want ~1", out.Sum)
	}

	var stats Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Completed < 1 || stats.Submitted < 1 || stats.QueueWaitCount < 1 {
		t.Errorf("stats not sane: %+v", stats)
	}
	if _, ok := stats.Tenants["alice"]; !ok {
		t.Error("stats missing the submitting tenant")
	}

	if code := getJSON(t, srv.URL+"/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
}

// TestHTTPQuotaRejection maps an over-quota submit to HTTP 429 with a
// Retry-After header while another tenant is still admitted.
func TestHTTPQuotaRejection(t *testing.T) {
	opts := testOptions()
	opts.Slots = 1
	opts.Quotas = map[string]TenantQuota{"greedy": {MaxConcurrent: 1, MaxQueued: 1}}
	s := newTestService(t, opts)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Slow enough that the single slot stays busy across the submit loop;
	// the 2s deadline keeps cleanup quick.
	slow := `{"tenant":"greedy","workload":"pagerank","params":{"nodes":256,"iters":2000},"deadline_sec":2}`
	var saw429 bool
	for i := 0; i < 5; i++ {
		resp, _, er := postJob(t, srv.URL, slow)
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
			}
			if er.RetryAfterSec <= 0 {
				t.Errorf("429 body: %+v", er)
			}
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
	}
	if !saw429 {
		t.Fatal("greedy tenant never got a 429")
	}
	resp, jr, er := postJob(t, srv.URL, `{"tenant":"modest","workload":"gram"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("modest tenant blocked: %d %+v", resp.StatusCode, er)
	}
	_ = jr
}

// TestHTTPCancelAndValidation covers DELETE and the 400 paths.
func TestHTTPCancelAndValidation(t *testing.T) {
	opts := testOptions()
	opts.Slots = 1
	s := newTestService(t, opts)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	slow := `{"tenant":"t","workload":"pagerank","params":{"nodes":256,"iters":200}}`
	if resp, _, _ := postJob(t, srv.URL, slow); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	_, jr, _ := postJob(t, srv.URL, slow) // queued behind the first
	if jr.ID == "" {
		t.Fatal("second submit not accepted")
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+jr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.State != StateCanceled {
		t.Fatalf("cancel = %d state %s", resp.StatusCode, out.State)
	}

	for _, bad := range []string{
		`{"workload":"gram"}`,            // no tenant
		`{"tenant":"t"}`,                 // no workload
		`{"tenant":"t","workload":"xx"}`, // unknown workload
		`{not json`,
	} {
		resp, _, _ := postJob(t, srv.URL, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestHTTPDraining: during Stop, /healthz flips to 503 and submits are shed
// with a draining error.
func TestHTTPDraining(t *testing.T) {
	opts := testOptions()
	opts.Slots = 1
	s := newTestService(t, opts)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if resp, _, _ := postJob(t, srv.URL,
		`{"tenant":"t","workload":"pagerank","params":{"nodes":256,"iters":100}}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	stopped := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		stopped <- s.Stop(ctx)
	}()
	var sawDraining bool
	for i := 0; i < 2000; i++ {
		if code := getJSON(t, srv.URL+"/healthz", nil); code == http.StatusServiceUnavailable {
			sawDraining = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawDraining {
		t.Error("healthz never reported draining")
	}
	resp, _, _ := postJob(t, srv.URL, `{"tenant":"t","workload":"gram"}`)
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusBadRequest {
		t.Errorf("submit while draining = %d, want 503 (or 400 once stopped)", resp.StatusCode)
	}
	if err := <-stopped; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
}
