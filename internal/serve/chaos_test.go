package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"dmac/internal/dist"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// TestServeChaos runs many concurrent jobs from several tenants against
// engines whose clusters inject worker kills and block corruption. The
// contract under fire: every job either completes with a result
// bit-identical to a fault-free single-job run, or surfaces a typed error
// (a *dist.WorkerFailure after retries are exhausted) — never a hang, never
// another tenant's data. Run under -race this also audits the shared caches
// and the engine pool for cross-job interference.
func TestServeChaos(t *testing.T) {
	opts := testOptions()
	opts.Slots = 3
	opts.QueueCapacity = 64
	opts.DefaultQuota = TenantQuota{MaxConcurrent: 2, MaxQueued: 32}
	opts.Cluster.Faults = dist.FaultPlan{
		Seed:        42,
		Rate:        0.05,
		TaskFaults:  true,
		CorruptRate: 0.05,
	}
	s := newTestService(t, opts)

	jobs := []struct {
		tenant   string
		workload string
		params   workload.Params
	}{
		{"alice", "pagerank", workload.Params{"nodes": 64, "iters": 4, "seed": 1}},
		{"bob", "gram", workload.Params{"rows": 40, "cols": 24, "seed": 2}},
		{"carol", "blend", workload.Params{"n": 32, "k": 6, "seed": 3}},
		{"alice", "gram", workload.Params{"rows": 32, "cols": 32, "seed": 4}},
		{"bob", "pagerank", workload.Params{"nodes": 48, "iters": 3, "seed": 5}},
		{"carol", "gram", workload.Params{"rows": 40, "cols": 24, "seed": 2}}, // dup of bob's: shared caches under fire
		{"alice", "blend", workload.Params{"n": 24, "k": 4, "seed": 6}},
		{"bob", "blend", workload.Params{"n": 32, "k": 6, "seed": 3}},
	}
	ids := make([]string, len(jobs))
	for i, jb := range jobs {
		st, err := s.Submit(JobSpec{Tenant: jb.tenant, Workload: jb.workload, Params: jb.params})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}

	// Fault-free oracles, computed once per distinct (workload, params).
	type oracle struct {
		grids   map[string]*matrix.Grid
		scalars map[string]float64
	}
	clean := testOptions()
	oracles := make(map[string]oracle)
	for _, jb := range jobs {
		key := jb.workload + "|" + jb.params.Key()
		if _, ok := oracles[key]; ok {
			continue
		}
		g, sc := soloRun(t, clean, jb.workload, jb.params)
		oracles[key] = oracle{grids: g, scalars: sc}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	completed, faulted := 0, 0
	for i, id := range ids {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatalf("job %d never finished: %v", i, err)
		}
		switch st.State {
		case StateDone:
			completed++
			res, err := s.Result(id)
			if err != nil {
				t.Fatal(err)
			}
			want := oracles[jobs[i].workload+"|"+jobs[i].params.Key()]
			for name, wg := range want.grids {
				if got := res.Grids[name]; got == nil || !matrix.GridEqual(got, wg, 0) {
					t.Errorf("job %d (%s/%s): output %s diverged from fault-free run",
						i, jobs[i].tenant, jobs[i].workload, name)
				}
			}
			for name, wv := range want.scalars {
				if got := res.Scalars[name]; got != wv {
					t.Errorf("job %d: scalar %s = %v, want %v", i, name, got, wv)
				}
			}
		case StateFailed:
			// Acceptable only as a typed worker-failure after retries.
			faulted++
			if !st.Faulted {
				t.Errorf("job %d failed without a typed worker failure: %s", i, st.Error)
			}
		default:
			t.Errorf("job %d: unexpected terminal state %s", i, st.State)
		}
	}
	t.Logf("chaos: %d/%d completed bit-identically, %d typed worker failures", completed, len(jobs), faulted)
	if completed == 0 {
		t.Error("no job survived the fault plan; recovery is not working")
	}
}

// TestServeChaosErrClassification pins that a run driven into an
// unrecoverable fault surfaces *dist.WorkerFailure through the service.
func TestServeChaosErrClassification(t *testing.T) {
	opts := testOptions()
	// Scripted kills on both allowed attempts of stage 1 exhaust the retry
	// budget deterministically.
	opts.Cluster.MaxStageRetries = 1
	opts.Cluster.Faults = dist.FaultPlan{Events: []dist.FaultEvent{
		{Stage: 1, Worker: 0, Attempt: 0, Kind: dist.FaultKillBoundary},
		{Stage: 1, Worker: 1, Attempt: 1, Kind: dist.FaultKillBoundary},
	}}
	s := newTestService(t, opts)
	st, err := s.Submit(JobSpec{Tenant: "t", Workload: "gram"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State == StateDone {
		t.Skip("fault plan failed to kill the run; nothing to classify")
	}
	if !fin.Faulted {
		t.Fatalf("failure not classified as worker fault: %s", fin.Error)
	}
	_, rerr := s.Result(st.ID)
	var wf *dist.WorkerFailure
	if !errors.As(rerr, &wf) {
		t.Fatalf("Result error %v does not wrap *dist.WorkerFailure", rerr)
	}
}
