package serve

import (
	"encoding/json"
	"io"

	"dmac/internal/autoscale"
	"dmac/internal/obs"
)

// FinalDump is the -metrics-out payload dmacserve writes on every exit path:
// the full metrics registry snapshot plus the final per-tenant SLO state, so
// post-mortems of forced or errored drains see the same numbers a live
// /metrics + /v1/slo scrape would have. When autoscaling was on, the
// controller's final status and its grow/shrink decision trace ride along.
type FinalDump struct {
	Metrics   obs.MetricsSnapshot  `json:"metrics"`
	SLO       SLOSnapshot          `json:"slo"`
	Autoscale *autoscale.Status    `json:"autoscale,omitempty"`
	Decisions []autoscale.Decision `json:"autoscale_decisions,omitempty"`
}

// WriteFinalDump writes the service's exit dump as indented JSON.
func (s *Service) WriteFinalDump(w io.Writer, metrics obs.MetricsSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(FinalDump{
		Metrics:   metrics,
		SLO:       s.SLO(),
		Autoscale: s.AutoscaleStatus(),
		Decisions: s.AutoscaleDecisions(),
	})
}
