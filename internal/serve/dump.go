package serve

import (
	"encoding/json"
	"io"

	"dmac/internal/obs"
)

// FinalDump is the -metrics-out payload dmacserve writes on every exit path:
// the full metrics registry snapshot plus the final per-tenant SLO state, so
// post-mortems of forced or errored drains see the same numbers a live
// /metrics + /v1/slo scrape would have.
type FinalDump struct {
	Metrics obs.MetricsSnapshot `json:"metrics"`
	SLO     SLOSnapshot         `json:"slo"`
}

// WriteFinalDump writes the exit dump as indented JSON.
func WriteFinalDump(w io.Writer, metrics obs.MetricsSnapshot, slo SLOSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(FinalDump{Metrics: metrics, SLO: slo})
}
