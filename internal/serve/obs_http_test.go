package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dmac/internal/obs"
	"dmac/internal/workload"
)

// runJobToDone submits a small registry workload and waits for completion.
func runJobToDone(t *testing.T, s *Service, tenant string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := s.Submit(JobSpec{Tenant: tenant, Workload: "gram"})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := s.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("job %s: %v / %+v", st.ID, err, fin)
	}
	return fin
}

// TestMetricsEndpoint: GET /metrics serves Prometheus text exposition with
// per-tenant labeled samples, scrapeable live (no flags, no restart).
func TestMetricsEndpoint(t *testing.T) {
	s := newTestService(t, testOptions())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	runJobToDone(t, s, "alice")
	runJobToDone(t, s, "bob")

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE dmac_serve_tenant_jobs_finished_total counter\n",
		`dmac_serve_tenant_jobs_finished_total{state="done",tenant="alice",workload="gram"} 1`,
		`dmac_serve_tenant_jobs_finished_total{state="done",tenant="bob",workload="gram"} 1`,
		"# TYPE dmac_serve_tenant_queue_wait_seconds histogram\n",
		`dmac_serve_tenant_queue_wait_seconds_bucket{tenant="alice",le="+Inf"} 1`,
		`dmac_serve_tenant_job_gflops_bucket{tenant="alice",le="+Inf"} 1`,
		"# TYPE dmac_serve_jobs_submitted_total counter\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Every non-comment line is "name{labels} value" or "name value" with a
	// parseable float — a malformed line breaks real scrapers.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 1 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestSLOEndpoint: GET /v1/slo reports per-tenant windows with burn rates.
func TestSLOEndpoint(t *testing.T) {
	opts := testOptions()
	opts.SLO = SLOConfig{Objective: 0.9, LatencySec: 0.000001}
	s := newTestService(t, opts)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Any real job takes longer than 1µs, so it burns budget as "slow" and
	// the burn rate is deterministically positive.
	runJobToDone(t, s, "alice")

	var snap SLOSnapshot
	if code := getJSON(t, srv.URL+"/v1/slo", &snap); code != http.StatusOK {
		t.Fatalf("GET /v1/slo = %d", code)
	}
	ten, ok := snap.Tenants["alice"]
	if !ok {
		t.Fatalf("tenant alice missing: %+v", snap)
	}
	if ten.Objective != 0.9 {
		t.Fatalf("objective = %v", ten.Objective)
	}
	for _, name := range []string{"5m", "1h"} {
		w, ok := ten.Windows[name]
		if !ok {
			t.Fatalf("window %s missing", name)
		}
		if w.Count != 1 || w.Slow != 1 {
			t.Fatalf("window %s: %+v", name, w)
		}
		if w.BurnRate < 9.99 || w.BurnRate > 10.01 { // 1.0 bad / 0.1 budget
			t.Fatalf("window %s burn rate = %v, want ~10", name, w.BurnRate)
		}
	}
}

// TestJobsListEndpoint: GET /v1/jobs lists jobs with tenant and state
// filters, and rejects unknown states.
func TestJobsListEndpoint(t *testing.T) {
	s := newTestService(t, testOptions())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	a := runJobToDone(t, s, "alice")
	runJobToDone(t, s, "bob")

	type listResp struct {
		Jobs  []JobStatus `json:"jobs"`
		Count int         `json:"count"`
	}
	var all listResp
	if code := getJSON(t, srv.URL+"/v1/jobs", &all); code != http.StatusOK {
		t.Fatalf("GET /v1/jobs = %d", code)
	}
	if all.Count != 2 || len(all.Jobs) != 2 {
		t.Fatalf("list all: %+v", all)
	}

	var alice listResp
	getJSON(t, srv.URL+"/v1/jobs?tenant=alice", &alice)
	if alice.Count != 1 || alice.Jobs[0].ID != a.ID {
		t.Fatalf("tenant filter: %+v", alice)
	}

	var done listResp
	getJSON(t, srv.URL+"/v1/jobs?state=done", &done)
	if done.Count != 2 {
		t.Fatalf("state filter: %+v", done)
	}
	var none listResp
	getJSON(t, srv.URL+"/v1/jobs?state=canceled", &none)
	if none.Count != 0 {
		t.Fatalf("canceled filter: %+v", none)
	}

	if code := getJSON(t, srv.URL+"/v1/jobs?state=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bogus state = %d, want 400", code)
	}
}

// TestTraceEndpoint covers the flight recorder's HTTP surface: 200 with
// Chrome-trace JSON for a recorded job, 404 unknown, 409 not finished, 410
// evicted from the ring.
func TestTraceEndpoint(t *testing.T) {
	opts := testOptions()
	opts.Slots = 1
	opts.DefaultQuota = TenantQuota{MaxConcurrent: 1, MaxQueued: 100}
	opts.FlightRecorderJobs = 1
	s := newTestService(t, opts)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	first := runJobToDone(t, s, "t")

	// Recorded job: valid Chrome trace with the serve/job root span.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + first.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	events, err := obs.ReadChromeTrace(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("trace not parseable: %v", err)
	}
	foundRoot := false
	for _, ev := range events {
		if ev.Cat == "serve" && ev.Name == "job" {
			foundRoot = true
		}
	}
	if len(events) == 0 || !foundRoot {
		t.Fatalf("trace events: %d, root found: %v", len(events), foundRoot)
	}

	// Unknown job.
	if code := getJSON(t, srv.URL+"/v1/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", code)
	}

	// Not finished: with one slot and MaxConcurrent 1, the second slow job
	// is deterministically queued behind the first.
	slow := workload.Params{"nodes": 256, "iters": 200, "seed": 9}
	running, err := s.Submit(JobSpec{Tenant: "t", Workload: "pagerank", Params: slow})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Tenant: "t", Workload: "pagerank", Params: slow})
	if err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+queued.ID+"/trace", nil); code != http.StatusConflict {
		t.Fatalf("queued trace = %d, want 409", code)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _ = s.Wait(ctx, running.ID)

	// Evicted: the ring holds one job; the cancellations above displaced the
	// first job's trace (canceled jobs still produce spans).
	second := runJobToDone(t, s, "t")
	if code := getJSON(t, srv.URL+"/v1/jobs/"+second.ID+"/trace", nil); code != http.StatusOK {
		t.Fatalf("second trace = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+first.ID+"/trace", nil); code != http.StatusGone {
		t.Fatalf("evicted trace = %d, want 410", code)
	}
}

// TestStatsQuantiles: /v1/stats carries server-side histogram quantiles.
func TestStatsQuantiles(t *testing.T) {
	s := newTestService(t, testOptions())
	runJobToDone(t, s, "t")
	st := s.Stats()
	if st.RunCount < 1 {
		t.Fatalf("run count = %d", st.RunCount)
	}
	if st.RunP50Sec <= 0 || st.RunP95Sec < st.RunP50Sec || st.RunP99Sec < st.RunP95Sec {
		t.Fatalf("run quantiles not monotone: p50=%v p95=%v p99=%v",
			st.RunP50Sec, st.RunP95Sec, st.RunP99Sec)
	}
	if st.QueueWaitP99Sec < st.QueueWaitP50Sec {
		t.Fatalf("queue quantiles not monotone: p50=%v p99=%v",
			st.QueueWaitP50Sec, st.QueueWaitP99Sec)
	}
}
